"""Table 3 — finding the 11 new OOO bugs by fuzzing (paper §6.1).

Regenerates the Table 3 rows: runs the OZZ campaign against the buggy
kernel and reports, per bug, whether it was found and after how many
tests.  The paper's shape: all 11 bugs found; none of them findable by
the in-order baseline (checked in bench_throughput).
"""

from __future__ import annotations

import pytest

from repro.bench.campaign import run_table3_campaign
from repro.bench.tables import render_table
from repro.kernel import bugs


@pytest.fixture(scope="module")
def campaign():
    return run_table3_campaign(seed=1, iterations=30)


def test_table3_campaign(benchmark, campaign):
    """Benchmark one full fuzz iteration; print the Table 3 reproduction."""
    from repro.fuzzer import OzzFuzzer
    from repro.config import KernelConfig
    from repro.kernel.kernel import KernelImage

    image = KernelImage(KernelConfig())
    fuzzer = OzzFuzzer(image, seed=2)

    benchmark.pedantic(fuzzer.fuzz_one, rounds=5, iterations=1)

    rows = []
    for spec in bugs.table3_bugs():
        found = spec.bug_id in campaign.found_table3
        first = campaign.first_hit_tests.get(spec.bug_id, "-")
        rows.append(
            (
                f"Bug #{spec.number}",
                spec.kernel_version,
                spec.subsystem,
                spec.title[:60],
                "found" if found else "MISSED",
                first,
            )
        )
    print()
    print(
        render_table(
            "Table 3: concurrency bugs newly discovered by OZZ",
            ["ID", "Kernel", "Subsystem", "Summary (crash title)", "Result", "first hit (test#)"],
            rows,
            note=(
                f"campaign: {campaign.tests_run} tests in {campaign.seconds:.1f}s, "
                f"{len(campaign.unique_titles)} unique crash titles "
                f"(paper: 61 titles, 11 identified as OOO bugs)"
            ),
        )
    )
    # Paper shape: every Table 3 bug is found.
    assert len(campaign.found_table3) == 11, campaign.found_table3
