"""Parallel campaign scaling — the worker-pool PR's wall-clock gate.

The same OZZ campaign budget runs through the unified
:func:`repro.campaign_api.run_campaign` entry point serially and under
the persistent worker pool at jobs ∈ {2, 4}.  An explicit
``batch_size`` pins all three runs to the *same* batch plan, so beyond
speed the benchmark asserts the pool's core guarantee: the merged
result is **equal** to the serial run (stats, crashes, found bug ids,
per-shard breakdown — everything the campaign's equality contract
covers) no matter how batches land on workers.

Thresholds are CPU-aware.  The PR acceptance targets — jobs=2 >= 1.5x
and jobs=4 >= 2.5x serial throughput — only make physical sense when
the machine has at least that many cores; on smaller boxes the gate
degrades to a "pool overhead stays bounded" floor (>= 0.4x serial on
one core, where workers merely time-slice and wall-clock noise on a
shared box is large — the floor is a catastrophic-regression backstop,
e.g. a busy-waiting supervisor, not a scaling measurement).  The
artifact
(``benchmarks/artifacts/parallel_scaling.json``) records ``ncpus``,
the thresholds that were actually applied, and per-job pass flags so
cross-machine numbers stay interpretable.

Run standalone (``python benchmarks/bench_parallel_scaling.py
[--quick]``) or under pytest, where the collected test enforces the
quick gate: result equality always, plus jobs=2 >= 1.0x serial when
the machine has 2+ CPUs.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from dataclasses import replace

from repro.bench.tables import render_table
from repro.campaign_api import CampaignSpec, run_campaign

ARTIFACT_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "artifacts", "parallel_scaling.json"
)

JOBS = (1, 2, 4)
ITERATIONS = 576
BATCH_SIZE = 48
SEED = 3
ROUNDS = 3
QUICK_ROUNDS = 2

#: PR acceptance targets, applied per job count when ncpus >= jobs.
TARGETS = {2: 1.5, 4: 2.5}
#: Oversubscribed floor: on a box with fewer cores than workers the pool
#: only time-slices, so the gate is "overhead stays bounded" — a
#: backstop against catastrophic regressions (busy-wait polling,
#: duplicated work), deliberately loose because wall-clock noise on a
#: shared single-core box routinely swings 2x.
OVERSUBSCRIBED_FLOOR = 0.4
#: Quick-mode (CI) target for jobs=2 on a 2+ core machine.
QUICK_TARGET = 1.0


def _spec(iterations: int, batch_size: int, jobs: int) -> CampaignSpec:
    return CampaignSpec(
        iterations=iterations, seed=SEED, jobs=jobs, batch_size=batch_size
    )


def _run(spec: CampaignSpec) -> tuple:
    t0 = time.perf_counter()
    result = run_campaign(spec)
    return time.perf_counter() - t0, result


def _threshold(jobs: int, ncpus: int, quick: bool) -> tuple:
    """(threshold, regime) actually applied for this job count."""
    if ncpus >= jobs:
        return (QUICK_TARGET if quick else TARGETS[jobs], "parallel")
    return (OVERSUBSCRIBED_FLOOR, "oversubscribed")


def run_benchmark(quick: bool = False) -> dict:
    # Quick mode keeps the full budget (a smaller one would be dominated
    # by pool startup and mostly measure process spawn time) and only
    # drops a round and relaxes the speedup gate.  Timing is interleaved
    # min-of-N: every round runs all job counts back to back and each
    # side keeps its best, which cancels machine noise — the minimum is
    # the right statistic for a deterministic workload where every
    # slowdown is external.
    iterations = ITERATIONS
    batch_size = BATCH_SIZE
    rounds = QUICK_ROUNDS if quick else ROUNDS
    ncpus = os.cpu_count() or 1

    best = {jobs: float("inf") for jobs in JOBS}
    results = {}
    for _ in range(rounds):
        for jobs in JOBS:
            seconds, result = _run(_spec(iterations, batch_size, jobs=jobs))
            best[jobs] = min(best[jobs], seconds)
            results[jobs] = result
    serial_s, serial = best[1], results[1]
    runs = {jobs: (best[jobs], results[jobs]) for jobs in JOBS}

    artifact = {
        "quick": quick,
        "iterations": iterations,
        "batch_size": batch_size,
        "rounds": rounds,
        "seed": SEED,
        "ncpus": ncpus,
        "targets": dict(TARGETS),
        "oversubscribed_floor": OVERSUBSCRIBED_FLOOR,
        "jobs": {},
    }
    for jobs in JOBS:
        seconds, result = runs[jobs]
        speedup = serial_s / seconds if seconds > 0 else 0.0
        # Same plan + same seeds => the pooled result must be *equal* to
        # the serial one (spec normalized: only the jobs knob differs).
        identical = replace(result, spec=serial.spec) == serial
        entry = {
            "tests_run": result.stats.tests_run,
            "seconds": seconds,
            "tests_per_sec": result.stats.tests_run / seconds if seconds else 0.0,
            "speedup_vs_serial": speedup,
            "coverage": result.stats.coverage,
            "found_table3": len(result.found_table3),
            "found_table4": len(result.found_table4),
            "equal_to_serial": identical,
        }
        if jobs > 1:
            threshold, regime = _threshold(jobs, ncpus, quick)
            entry["threshold"] = threshold
            entry["regime"] = regime
            entry["passed"] = identical and speedup >= threshold
        artifact["jobs"][str(jobs)] = entry

    os.makedirs(os.path.dirname(ARTIFACT_PATH), exist_ok=True)
    with open(ARTIFACT_PATH, "w") as fh:
        json.dump(artifact, fh, indent=2)
    return artifact


def _report(artifact: dict) -> None:
    rows = []
    for jobs_s, e in sorted(artifact["jobs"].items(), key=lambda kv: int(kv[0])):
        gate = "-"
        if "threshold" in e:
            gate = f">={e['threshold']:.1f}x ({e['regime']})"
        rows.append(
            (
                jobs_s,
                e["tests_run"],
                f"{e['seconds']:.2f}",
                f"{e['tests_per_sec']:.1f}",
                f"{e['speedup_vs_serial']:.2f}x",
                gate,
                "yes" if e["equal_to_serial"] else "NO",
            )
        )
    print()
    print(
        render_table(
            "Parallel campaign scaling (persistent worker pool)",
            ["jobs", "tests", "seconds", "tests/s", "speedup", "gate", "=serial"],
            rows,
            note=(
                f"{artifact['ncpus']} CPU(s); one shared batch plan "
                f"(batch_size={artifact['batch_size']}) across all job counts"
            ),
        )
    )
    print(f"wrote {ARTIFACT_PATH}")


def test_parallel_scaling():
    """CI gate: pooled results equal serial; jobs=2 not slower on 2+ CPUs."""
    artifact = run_benchmark(quick=True)
    _report(artifact)
    for jobs_s, entry in artifact["jobs"].items():
        assert entry["equal_to_serial"], f"jobs={jobs_s} diverged from serial result"
    two = artifact["jobs"]["2"]
    assert two["speedup_vs_serial"] >= two["threshold"], (
        f"jobs=2 speedup {two['speedup_vs_serial']:.2f}x below "
        f"{two['threshold']:.1f}x ({two['regime']} regime, "
        f"{artifact['ncpus']} CPU(s))"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller budget, jobs=2 floor-only gate (CI)",
    )
    args = parser.parse_args()
    artifact = run_benchmark(quick=args.quick)
    _report(artifact)
    ok = True
    for jobs_s, entry in artifact["jobs"].items():
        if not entry["equal_to_serial"]:
            print(f"FAIL: jobs={jobs_s} result diverged from serial")
            ok = False
    gated = ["2"] if args.quick else [str(j) for j in JOBS[1:]]
    for jobs_s in gated:
        entry = artifact["jobs"][jobs_s]
        if entry["speedup_vs_serial"] < entry["threshold"]:
            print(
                f"FAIL: jobs={jobs_s} speedup "
                f"{entry['speedup_vs_serial']:.2f}x below "
                f"{entry['threshold']:.1f}x ({entry['regime']})"
            )
            ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
