"""Parallel campaign scaling — tests/s at jobs ∈ {1, 2, 4}.

Companion to ``bench_throughput.py``: the same OZZ campaign budget run
through the unified :func:`repro.campaign_api.run_campaign` entry point
serially and sharded across worker processes.  On a multi-core machine
the sharded runs should approach linear scaling (the shards share no
state); on a single core they mostly measure fork/merge overhead.

Besides the printed table, the run emits a JSON artifact
(``benchmarks/artifacts/parallel_scaling.json``) with the per-job-count
numbers, so scaling can be tracked across machines alongside the
``bench_throughput.py`` figures.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.bench.tables import render_table
from repro.campaign_api import CampaignSpec, run_campaign

JOBS = (1, 2, 4)
ITERATIONS = 24
SEED = 3

ARTIFACT_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "artifacts", "parallel_scaling.json"
)


@pytest.fixture(scope="module")
def scaling_results():
    return {
        jobs: run_campaign(CampaignSpec(iterations=ITERATIONS, seed=SEED, jobs=jobs))
        for jobs in JOBS
    }


def test_parallel_scaling(benchmark, scaling_results):
    """Benchmark a small sharded campaign; print + persist the scaling table."""
    benchmark.pedantic(
        lambda: run_campaign(CampaignSpec(iterations=8, seed=9, jobs=2)),
        rounds=3,
        iterations=1,
    )

    serial = scaling_results[1]
    rows = []
    artifact = {
        "iterations": ITERATIONS,
        "seed": SEED,
        "ncpus": os.cpu_count(),
        "jobs": {},
    }
    for jobs, result in sorted(scaling_results.items()):
        speedup = result.tests_per_sec / serial.tests_per_sec
        rows.append(
            (
                jobs,
                result.stats.tests_run,
                f"{result.seconds:.2f}",
                f"{result.tests_per_sec:.1f}",
                f"{speedup:.2f}x",
                f"{len(result.found_table3)}/11",
                f"{len(result.found_table4)}/9",
            )
        )
        artifact["jobs"][str(jobs)] = {
            "tests_run": result.stats.tests_run,
            "seconds": result.seconds,
            "tests_per_sec": result.tests_per_sec,
            "speedup_vs_serial": speedup,
            "coverage": result.stats.coverage,
            "found_table3": len(result.found_table3),
            "found_table4": len(result.found_table4),
        }
    print()
    print(
        render_table(
            "Parallel campaign scaling (sharded run_campaign)",
            ["jobs", "tests", "seconds", "tests/s", "speedup", "T3", "T4"],
            rows,
            note=f"{os.cpu_count()} CPU(s); shards derive seed*10_000+k and split the seed corpus [k::N]",
        )
    )

    os.makedirs(os.path.dirname(ARTIFACT_PATH), exist_ok=True)
    with open(ARTIFACT_PATH, "w") as fh:
        json.dump(artifact, fh, indent=2)
    print(f"wrote {ARTIFACT_PATH}")

    # Sharded campaigns must not lose bugs vs the serial run at the same
    # total budget (the seed-corpus slicing guarantees full seed cover).
    for jobs, result in scaling_results.items():
        assert set(result.found_table3) >= set(serial.found_table3), (
            f"jobs={jobs} lost Table 3 bugs"
        )
        assert set(result.found_table4) >= set(serial.found_table4), (
            f"jobs={jobs} lost Table 4 bugs"
        )
