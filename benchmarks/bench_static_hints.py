"""KIRA static hint seeding — campaign ablation at equal budget.

The same Table-3-style campaign run twice through
:func:`repro.campaign_api.run_campaign`: once dynamic-only (the paper's
pipeline) and once with ``static_hints=True``, which (a) orders each
pair's scheduling hints by :func:`repro.fuzzer.hints.hint_static_rank`
against KIRA's static reordering candidates and (b) schedules syscall
pairs whose static candidate sets overlap on the same addresses first.
Both knobs only *reorder* work — the selected pairs and the per-pair
hint budget are unchanged — so the two runs execute the same number of
tests and the comparison isolates search order.

The interesting figure is tests-to-first-crash per seeded bug: static
seeding must never find a bug later than the dynamic-only baseline at
the same budget, and should find some strictly earlier (the lint's
candidates point at the buggy pairs before any profile exists).

A second ablation isolates the KIRA v2 *lockset weighting*: the same
static-hints campaign under ``static_rank="lockset"`` (default — tier
plus race-engine evidence weights) vs ``static_rank="tier"`` (the
uniform tier-only ranking this repo shipped first).  The weights are a
strict refinement of the tier order, so the lockset arm may never find
a seeded bug later.  On the built-in kernel the two arms are
outcome-identical at this scale — candidate weights differ across
subsystems while hint lists compete within one — so the refinement
itself is asserted directly on the analysis output: a real
mixed-weight hint list orders by race evidence where the tier ranking
ties.

Besides the printed table, the run emits a JSON artifact
(``benchmarks/artifacts/static_hints.json``) with the per-bug numbers,
alongside the other bench artifacts.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.bench.tables import render_table
from repro.campaign_api import CampaignSpec, run_campaign
from repro.fuzzer.parallel import run_shard

ITERATIONS = 40
SEED = 1

ARTIFACT_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "artifacts", "static_hints.json"
)


def _first_hits(result):
    return {c.bug_id: c.first_test_index for c in result.crashes if c.bug_id}


@pytest.fixture(scope="module")
def ablation_results():
    off = run_campaign(CampaignSpec(iterations=ITERATIONS, seed=SEED))
    on = run_campaign(
        CampaignSpec(iterations=ITERATIONS, seed=SEED, static_hints=True)
    )
    return off, on


def test_static_hints_ablation(benchmark, ablation_results):
    """Benchmark a small static-hints campaign; print + persist the
    per-bug tests-to-first-crash comparison."""
    benchmark.pedantic(
        lambda: run_campaign(
            CampaignSpec(iterations=8, seed=9, static_hints=True)
        ),
        rounds=3,
        iterations=1,
    )

    off, on = ablation_results
    hits_off, hits_on = _first_hits(off), _first_hits(on)

    rows = []
    artifact = {
        "iterations": ITERATIONS,
        "seed": SEED,
        "tests_run": {"off": off.stats.tests_run, "on": on.stats.tests_run},
        "bugs": {},
    }
    improved = []
    for bug_id in sorted(set(hits_off) | set(hits_on)):
        t_off = hits_off.get(bug_id)
        t_on = hits_on.get(bug_id)
        if t_off is not None and t_on is not None:
            delta = t_off - t_on
            verdict = "earlier" if delta > 0 else ("same" if delta == 0 else "later")
        else:
            verdict = "only static" if t_off is None else "only dynamic"
        if verdict == "earlier":
            improved.append(bug_id)
        rows.append((bug_id, t_off if t_off is not None else "-",
                     t_on if t_on is not None else "-", verdict))
        artifact["bugs"][bug_id] = {
            "tests_to_first_crash_dynamic": t_off,
            "tests_to_first_crash_static": t_on,
            "verdict": verdict,
        }
    print()
    print(
        render_table(
            "Static hint seeding (tests to first crash, equal budget)",
            ["bug", "dynamic-only", "w/ static hints", "verdict"],
            rows,
            note=f"{ITERATIONS} iterations, seed {SEED}; "
            f"{len(improved)} bugs found strictly earlier",
        )
    )

    os.makedirs(os.path.dirname(ARTIFACT_PATH), exist_ok=True)
    with open(ARTIFACT_PATH, "w") as fh:
        json.dump(artifact, fh, indent=2)
    print(f"wrote {ARTIFACT_PATH}")

    # Equal budget: static seeding reorders the search, it must not
    # change how much work runs.
    assert on.stats.tests_run == off.stats.tests_run

    # Never worse on any seeded bug the baseline finds ...
    for bug_id, t_off in hits_off.items():
        t_on = hits_on.get(bug_id)
        assert t_on is not None, f"static hints lost {bug_id}"
        assert t_on <= t_off, (
            f"{bug_id}: static hints slower ({t_on} vs {t_off} tests)"
        )
    # ... and strictly better on at least two.
    assert len(improved) >= 2, f"only improved {improved}"


# -- KIRA v2: lockset-weighted vs tier-only ranking -------------------------


def _record_lockset_ablation(payload):
    """Merge the lockset-vs-tier section into the shared artifact."""
    os.makedirs(os.path.dirname(ARTIFACT_PATH), exist_ok=True)
    artifact = {}
    if os.path.exists(ARTIFACT_PATH):
        with open(ARTIFACT_PATH) as fh:
            artifact = json.load(fh)
    artifact["lockset_vs_tier"] = payload
    with open(ARTIFACT_PATH, "w") as fh:
        json.dump(artifact, fh, indent=2)


def _shard_hits(result):
    return {
        rec.bug_id: rec.first_test_index
        for rec in result.crashdb.records.values()
        if rec.bug_id
    }


@pytest.fixture(scope="module")
def rank_ablation_results():
    spec = CampaignSpec(iterations=ITERATIONS, seed=SEED, static_hints=True)
    lockset = run_shard(spec, 0)
    tier = run_shard(
        spec, 0, on_fuzzer=lambda f: setattr(f, "static_rank", "tier")
    )
    return lockset, tier


def test_lockset_rank_never_later_than_tier(rank_ablation_results):
    """Equal-budget non-regression: the lockset-weighted ranking may not
    find any seeded bug later than the tier-only ranking, nor lose one."""
    lockset, tier = rank_ablation_results
    hits_lockset, hits_tier = _shard_hits(lockset), _shard_hits(tier)

    _record_lockset_ablation(
        {
            "iterations": ITERATIONS,
            "seed": SEED,
            "tests_run": {
                "lockset": lockset.stats.tests_run,
                "tier": tier.stats.tests_run,
            },
            "bugs": {
                bug_id: {
                    "tier": hits_tier.get(bug_id),
                    "lockset": hits_lockset.get(bug_id),
                }
                for bug_id in sorted(set(hits_tier) | set(hits_lockset))
            },
        }
    )

    assert lockset.stats.tests_run == tier.stats.tests_run
    for bug_id, t_tier in hits_tier.items():
        t_lockset = hits_lockset.get(bug_id)
        assert t_lockset is not None, f"lockset ranking lost {bug_id}"
        assert t_lockset <= t_tier, (
            f"{bug_id}: lockset ranking slower ({t_lockset} vs {t_tier})"
        )


@pytest.fixture(scope="module")
def weighted_pairs():
    from repro.analysis import (
        analyze_races,
        candidate_weights,
        static_reordering_candidates,
    )
    from repro.config import KernelConfig
    from repro.kernel.kernel import KernelImage

    image = KernelImage(KernelConfig(instrumented=False))
    candidates = static_reordering_candidates(image.plain_program)
    report = analyze_races(
        image.plain_program,
        owner=image.function_owner,
        roots=image.syscall_roots(),
        regions=image.global_regions(),
        candidates=candidates,
    )
    return candidate_weights(report.races(), candidates)


def test_lockset_weights_strictly_refine_tier_order(weighted_pairs):
    """The ranking itself is a strict refinement of the tier order.

    Campaign outcomes on the built-in kernel are identical between the
    two arms (hint lists compete within a subsystem, where the race
    engine's evidence is uniform), so the refinement is demonstrated on
    the analysis output directly: for two hints that both exercise a
    static candidate (tier 0), the tier ranking ties where the lockset
    weights order the race-backed hint first.
    """
    from repro.fuzzer.hints import (
        LD,
        ST,
        SchedulingHint,
        hint_static_rank,
        prioritize_hints,
    )

    ranked = []
    for kind, table in sorted(weighted_pairs.items()):
        assert kind in (ST, LD)
        for pair in sorted(table):
            mover = pair[0] if kind == ST else pair[1]
            hint = SchedulingHint(kind, 0, mover, 1, (mover,), 1)
            rank = hint_static_rank(hint, weighted_pairs)
            if rank[0] == 0:
                ranked.append((hint, rank))

    # The race engine must differentiate at least some exercising hints.
    weights = sorted({-rank[1] for _, rank in ranked})
    assert len(weights) >= 2, f"uniform candidate weights: {weights}"

    light = next(h for h, r in ranked if -r[1] == weights[0])
    heavy = next(h for h, r in ranked if -r[1] == weights[-1])

    # Tier-only ranking ties the two (stable sort keeps input order) ...
    tier_pairs = {kind: set(table) for kind, table in weighted_pairs.items()}
    assert prioritize_hints([light, heavy], tier_pairs) == [light, heavy]
    # ... the lockset weights put the race-backed hint first.
    assert prioritize_hints([light, heavy], weighted_pairs) == [heavy, light]
