"""KIRA static hint seeding — campaign ablation at equal budget.

The same Table-3-style campaign run twice through
:func:`repro.campaign_api.run_campaign`: once dynamic-only (the paper's
pipeline) and once with ``static_hints=True``, which (a) orders each
pair's scheduling hints by :func:`repro.fuzzer.hints.hint_static_tier`
against KIRA's static reordering candidates and (b) schedules syscall
pairs whose static candidate sets overlap on the same addresses first.
Both knobs only *reorder* work — the selected pairs and the per-pair
hint budget are unchanged — so the two runs execute the same number of
tests and the comparison isolates search order.

The interesting figure is tests-to-first-crash per seeded bug: static
seeding must never find a bug later than the dynamic-only baseline at
the same budget, and should find some strictly earlier (the lint's
candidates point at the buggy pairs before any profile exists).

Besides the printed table, the run emits a JSON artifact
(``benchmarks/artifacts/static_hints.json``) with the per-bug numbers,
alongside the other bench artifacts.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.bench.tables import render_table
from repro.campaign_api import CampaignSpec, run_campaign

ITERATIONS = 40
SEED = 1

ARTIFACT_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "artifacts", "static_hints.json"
)


def _first_hits(result):
    return {c.bug_id: c.first_test_index for c in result.crashes if c.bug_id}


@pytest.fixture(scope="module")
def ablation_results():
    off = run_campaign(CampaignSpec(iterations=ITERATIONS, seed=SEED))
    on = run_campaign(
        CampaignSpec(iterations=ITERATIONS, seed=SEED, static_hints=True)
    )
    return off, on


def test_static_hints_ablation(benchmark, ablation_results):
    """Benchmark a small static-hints campaign; print + persist the
    per-bug tests-to-first-crash comparison."""
    benchmark.pedantic(
        lambda: run_campaign(
            CampaignSpec(iterations=8, seed=9, static_hints=True)
        ),
        rounds=3,
        iterations=1,
    )

    off, on = ablation_results
    hits_off, hits_on = _first_hits(off), _first_hits(on)

    rows = []
    artifact = {
        "iterations": ITERATIONS,
        "seed": SEED,
        "tests_run": {"off": off.stats.tests_run, "on": on.stats.tests_run},
        "bugs": {},
    }
    improved = []
    for bug_id in sorted(set(hits_off) | set(hits_on)):
        t_off = hits_off.get(bug_id)
        t_on = hits_on.get(bug_id)
        if t_off is not None and t_on is not None:
            delta = t_off - t_on
            verdict = "earlier" if delta > 0 else ("same" if delta == 0 else "later")
        else:
            verdict = "only static" if t_off is None else "only dynamic"
        if verdict == "earlier":
            improved.append(bug_id)
        rows.append((bug_id, t_off if t_off is not None else "-",
                     t_on if t_on is not None else "-", verdict))
        artifact["bugs"][bug_id] = {
            "tests_to_first_crash_dynamic": t_off,
            "tests_to_first_crash_static": t_on,
            "verdict": verdict,
        }
    print()
    print(
        render_table(
            "Static hint seeding (tests to first crash, equal budget)",
            ["bug", "dynamic-only", "w/ static hints", "verdict"],
            rows,
            note=f"{ITERATIONS} iterations, seed {SEED}; "
            f"{len(improved)} bugs found strictly earlier",
        )
    )

    os.makedirs(os.path.dirname(ARTIFACT_PATH), exist_ok=True)
    with open(ARTIFACT_PATH, "w") as fh:
        json.dump(artifact, fh, indent=2)
    print(f"wrote {ARTIFACT_PATH}")

    # Equal budget: static seeding reorders the search, it must not
    # change how much work runs.
    assert on.stats.tests_run == off.stats.tests_run

    # Never worse on any seeded bug the baseline finds ...
    for bug_id, t_off in hits_off.items():
        t_on = hits_on.get(bug_id)
        assert t_on is not None, f"static hints lost {bug_id}"
        assert t_on <= t_off, (
            f"{bug_id}: static hints slower ({t_on} vs {t_off} tests)"
        )
    # ... and strictly better on at least two.
    assert len(improved) >= 2, f"only improved {improved}"
