"""§6.4 — comparison with OFence's static paired-barrier analysis.

Paper result: 8 of the 11 Table 3 bugs do not fall into OFence's
predefined patterns.  We run the OFence-style analyzer over the buggy
kernel's program and check each bug's verdict against the registry's
ground-truth classification.
"""

from __future__ import annotations

import pytest

from repro.bench.tables import render_table
from repro.fuzzer.baselines import OFenceAnalyzer
from repro.kernel import bugs


@pytest.fixture(scope="module")
def analyzer(plain_image):
    return OFenceAnalyzer(plain_image.plain_program)


def test_ofence_comparison(benchmark, analyzer, plain_image):
    benchmark.pedantic(
        lambda: analyzer.inconsistent_writers() + analyzer.unpaired_wmb(),
        rounds=5,
        iterations=1,
    )
    rows = []
    detected = 0
    for spec in bugs.table3_bugs():
        verdict = analyzer.detects_bug(spec.bug_id, plain_image)
        detected += verdict
        rows.append(
            (
                f"Bug #{spec.number}",
                spec.subsystem,
                "pattern match" if verdict else "no anchor",
                "detectable" if verdict else "hardly detectable",
            )
        )
    print()
    print(
        render_table(
            "OFence comparison (paper SS6.4)",
            ["ID", "Subsystem", "OFence view", "Verdict"],
            rows,
            note=f"{11 - detected}/11 hardly detectable by OFence (paper: 8/11)",
        )
    )
    assert 11 - detected == 8
    for spec in bugs.table3_bugs():
        assert analyzer.detects_bug(spec.bug_id, plain_image) == spec.ofence_pattern
