"""KIRA v2 precision gate: seeded-bug recall + false-positive budget.

The interprocedural race engine runs over the whole built-in kernel with
zero executions and is scored two ways:

* **Recall** — every seeded bug's subsystem must carry at least one
  non-benign race finding (the engine may not lose a bug the previous
  revision flagged).
* **Precision** — every finding's *fingerprint* (subsystem,
  classification, writer site, other site, abstract location) must
  appear in the committed baseline
  (``benchmarks/artifacts/lint_baseline.json``).  A fingerprint not in
  the baseline is a new unsuppressed finding: either a genuine
  regression in the analysis or a new true positive — both require a
  human to re-bless the baseline (edit the JSON) rather than silently
  shifting the precision floor.

Wall-clock for the full pipeline is recorded too; the engine is a
build-time step (strict lint mode), so it must stay interactive.

Run standalone (``python benchmarks/bench_lint_precision.py [--quick]``),
with ``--rebaseline`` to regenerate the committed baseline, or under
pytest where the collected tests enforce the gate in CI.  The run
writes ``benchmarks/artifacts/lint_precision.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.analysis import analyze_races, static_reordering_candidates
from repro.config import KernelConfig
from repro.kernel import bugs
from repro.kernel.kernel import KernelImage

ARTIFACT_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "artifacts")
BASELINE_PATH = os.path.join(ARTIFACT_DIR, "lint_baseline.json")
ARTIFACT_PATH = os.path.join(ARTIFACT_DIR, "lint_precision.json")

#: build-time budget for the whole interprocedural pipeline (seconds);
#: generous — the measured time is ~0.3s — but catches complexity blowups.
WALL_CLOCK_BUDGET = 30.0


def fingerprint(finding) -> str:
    w, o = finding.writer, finding.other
    return "|".join(
        [
            finding.subsystem,
            finding.classification,
            f"{w.function}[{w.index}]",
            f"{o.function}[{o.index}]",
            finding.location,
        ]
    )


def run_engine():
    """Build the kernel image and run the race engine; returns
    (races, seconds)."""
    image = KernelImage(KernelConfig(instrumented=False))
    start = time.perf_counter()
    report = analyze_races(
        image.plain_program,
        owner=image.function_owner,
        roots=image.syscall_roots(),
        regions=image.global_regions(),
        candidates=static_reordering_candidates(image.plain_program),
    )
    seconds = time.perf_counter() - start
    return report.races(), seconds


def score(races, baseline):
    bug_subsystems = {b.subsystem for b in bugs.all_bugs()}
    flagged = {r.subsystem for r in races}
    missed = sorted(bug_subsystems - flagged)
    current = {fingerprint(r) for r in races}
    allowed = set(baseline["fingerprints"])
    new = sorted(current - allowed)
    fixed = sorted(allowed - current)
    fps = [r for r in races if r.subsystem not in bug_subsystems]
    return {
        "bug_subsystems": len(bug_subsystems),
        "flagged_bug_subsystems": len(bug_subsystems & flagged),
        "missed_subsystems": missed,
        "findings": len(races),
        "false_positives": len(fps),
        "new_findings": new,
        "fixed_findings": fixed,
    }


def load_baseline():
    with open(BASELINE_PATH) as fh:
        return json.load(fh)


def write_artifact(summary, seconds):
    os.makedirs(ARTIFACT_DIR, exist_ok=True)
    payload = dict(summary)
    payload["seconds"] = round(seconds, 3)
    with open(ARTIFACT_PATH, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return payload


def rebaseline():
    races, seconds = run_engine()
    os.makedirs(ARTIFACT_DIR, exist_ok=True)
    payload = {
        "version": 1,
        "findings": len(races),
        "fingerprints": sorted({fingerprint(r) for r in races}),
    }
    with open(BASELINE_PATH, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {BASELINE_PATH} ({len(races)} findings, {seconds:.2f}s)")


# -- pytest entry points ----------------------------------------------------


def test_lint_precision_gate():
    races, seconds = run_engine()
    summary = score(races, load_baseline())
    write_artifact(summary, seconds)

    assert not summary["missed_subsystems"], (
        f"race engine lost seeded-bug subsystems: {summary['missed_subsystems']}"
    )
    assert not summary["new_findings"], (
        "new unsuppressed findings (rebless with --rebaseline if intended):\n  "
        + "\n  ".join(summary["new_findings"][:20])
    )
    assert seconds < WALL_CLOCK_BUDGET


def test_every_finding_has_witness():
    races, _ = run_engine()
    for race in races:
        assert race.writer.witness and race.other.witness


# -- standalone -------------------------------------------------------------


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="skip the witness sweep")
    parser.add_argument("--rebaseline", action="store_true",
                        help="regenerate the committed baseline")
    args = parser.parse_args()
    if args.rebaseline:
        rebaseline()
        return 0
    races, seconds = run_engine()
    summary = score(races, load_baseline())
    payload = write_artifact(summary, seconds)
    print(json.dumps(payload, indent=2))
    ok = (
        not summary["missed_subsystems"]
        and not summary["new_findings"]
        and seconds < WALL_CLOCK_BUDGET
    )
    if not args.quick:
        for race in races:
            ok = ok and bool(race.writer.witness and race.other.witness)
    print("PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
