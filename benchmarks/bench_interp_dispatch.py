"""Pre-decoded dispatch + boot-snapshot reset — the PR's two perf gates.

Two measurements, both interleaved min-of-N (alternating A/B runs and
keeping each side's best round cancels machine noise; the *minimum* is
the right statistic for a deterministic workload where every slowdown
is external):

1. **Micro** — a tight uninstrumented store/load/add loop where dispatch
   is the largest possible fraction of the work.  Decoded closures
   (``decoded_dispatch=True``, the default) vs the reference
   isinstance-chain interpreter on the *same* program.  Target: >= 2x.

2. **End-to-end** — a seeded ``OzzFuzzer`` campaign (the ``repro fuzz``
   workload): optimized engine (decoded dispatch + snapshot reset) vs
   the reference configuration (``decoded_dispatch=False,
   snapshot_reset=False``).  Target: >= 1.3x tests/sec.  The campaigns
   must also be *equivalent*: identical :class:`FuzzStats` and identical
   crash-title sets, asserted every round — the speedup is only valid
   evidence if the two engines did the same work.

Results land in ``benchmarks/artifacts/interp_dispatch.json`` together
with an :data:`ENGINE_COUNTERS` snapshot (boots vs resets proves the
snapshot path actually carried the optimized campaign).

Run standalone (``python benchmarks/bench_interp_dispatch.py [--quick]``)
or under pytest, where the collected test enforces the CI floor:
both ratios must stay above 1.0 (never slower than the reference).
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.config import KernelConfig
from repro.fuzzer.fuzzer import OzzFuzzer
from repro.kernel.kernel import KernelImage
from repro.kir import Builder, Program
from repro.machine import Machine
from repro.mem.memory import DATA_BASE
from repro.oemu.profiler import ENGINE_COUNTERS

ARTIFACT_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "artifacts", "interp_dispatch.json"
)

MICRO_ITERS = 20_000   # 5 instructions per loop iteration
MICRO_ROUNDS = 7
E2E_ITERS = 150        # fuzz_one calls per campaign
E2E_ROUNDS = 9
SEED = 7

#: CI floor — the optimized engine must never lose to the reference.
FLOOR = 1.0
#: PR acceptance targets (reported in the artifact; enforced when the
#: benchmark is run standalone without --quick).
MICRO_TARGET = 2.0
E2E_TARGET = 1.3


def _loop_program() -> Program:
    """Tight uninstrumented loop: store, load, add, add, branch."""
    b = Builder("spin", params=["n"])
    i = b.mov(0)
    acc = b.mov(0)
    top = b.label()
    b.bind(top)
    b.store(DATA_BASE, 0, i)
    v = b.load(DATA_BASE, 0)
    b.add(acc, v, dst=acc)
    b.add(i, 1, dst=i)
    b.blt(i, b.reg("n"), top)
    b.ret(acc)
    return Program([b.function()])


PROGRAM = _loop_program()


def _micro_once(decoded: bool, iters: int) -> float:
    m = Machine(PROGRAM, decoded_dispatch=decoded)
    thread = m.interp.spawn("spin", (iters,), fuel=10**9)
    t0 = time.perf_counter()
    m.interp.run(thread)
    elapsed = time.perf_counter() - t0
    assert thread.retval == sum(range(iters)), thread.retval
    return elapsed


def bench_micro(iters: int, rounds: int) -> dict:
    _micro_once(True, iters)   # warm-up: decode + bytecode caches
    _micro_once(False, iters)
    decoded = reference = float("inf")
    for _ in range(rounds):
        decoded = min(decoded, _micro_once(True, iters))
        reference = min(reference, _micro_once(False, iters))
    return {
        "loop_iters": iters,
        "rounds": rounds,
        "decoded_s": decoded,
        "reference_s": reference,
        "speedup": reference / decoded,
    }


def _campaign(iters: int, **overrides) -> tuple:
    image = KernelImage(KernelConfig(**overrides))
    fuzzer = OzzFuzzer(image, seed=SEED)
    t0 = time.perf_counter()
    stats = fuzzer.run(iters)
    elapsed = time.perf_counter() - t0
    return elapsed, stats, frozenset(fuzzer.crashdb.unique_titles)


def bench_e2e(iters: int, rounds: int) -> dict:
    opt_t = ref_t = float("inf")
    tests = crashes = None
    for _ in range(rounds):
        t_o, stats_o, titles_o = _campaign(iters)
        t_r, stats_r, titles_r = _campaign(
            iters, decoded_dispatch=False, snapshot_reset=False
        )
        # Differential gate: same input stream => same campaign outcome.
        assert stats_o == stats_r, (stats_o, stats_r)
        assert titles_o == titles_r, (titles_o, titles_r)
        tests, crashes = stats_o.tests_run, stats_o.crashes
        opt_t = min(opt_t, t_o)
        ref_t = min(ref_t, t_r)
    return {
        "campaign_iters": iters,
        "rounds": rounds,
        "tests_per_campaign": tests,
        "crashes_per_campaign": crashes,
        "outcomes_identical": True,
        "optimized_s": opt_t,
        "reference_s": ref_t,
        "optimized_tests_per_s": tests / opt_t,
        "reference_tests_per_s": tests / ref_t,
        "speedup": ref_t / opt_t,
    }


def run_benchmark(quick: bool = False) -> dict:
    micro_iters = MICRO_ITERS // 4 if quick else MICRO_ITERS
    micro_rounds = 3 if quick else MICRO_ROUNDS
    e2e_iters = 40 if quick else E2E_ITERS
    e2e_rounds = 2 if quick else E2E_ROUNDS

    ENGINE_COUNTERS.reset()
    micro = bench_micro(micro_iters, micro_rounds)
    e2e = bench_e2e(e2e_iters, e2e_rounds)

    artifact = {
        "quick": quick,
        "seed": SEED,
        "targets": {"micro_speedup": MICRO_TARGET, "e2e_speedup": E2E_TARGET},
        "floor": FLOOR,
        "micro_uninstrumented_loop": micro,
        "e2e_fuzz_campaign": e2e,
        "engine_counters": ENGINE_COUNTERS.snapshot(),
    }
    os.makedirs(os.path.dirname(ARTIFACT_PATH), exist_ok=True)
    with open(ARTIFACT_PATH, "w") as fh:
        json.dump(artifact, fh, indent=2)
    return artifact


def _report(artifact: dict) -> None:
    micro = artifact["micro_uninstrumented_loop"]
    e2e = artifact["e2e_fuzz_campaign"]
    print(
        f"micro: decoded {micro['decoded_s'] * 1e3:.1f}ms vs reference "
        f"{micro['reference_s'] * 1e3:.1f}ms -> {micro['speedup']:.2f}x "
        f"(target {MICRO_TARGET:.1f}x)"
    )
    print(
        f"e2e:   optimized {e2e['optimized_tests_per_s']:.0f} tests/s vs reference "
        f"{e2e['reference_tests_per_s']:.0f} tests/s -> {e2e['speedup']:.2f}x "
        f"(target {E2E_TARGET:.1f}x); outcomes identical over "
        f"{e2e['rounds']} rounds of {e2e['tests_per_campaign']} tests"
    )
    print(f"counters: {artifact['engine_counters']}")
    print(f"wrote {ARTIFACT_PATH}")


def test_dispatch_never_slower_than_reference():
    """CI floor: both engines' speedups must stay above 1.0x.

    The full >=2x / >=1.3x acceptance numbers are checked when the
    benchmark runs standalone (see __main__); under pytest (CI machines
    with unpredictable load) only the never-slower floor is enforced.
    """
    artifact = run_benchmark(quick=True)
    _report(artifact)
    micro = artifact["micro_uninstrumented_loop"]["speedup"]
    e2e = artifact["e2e_fuzz_campaign"]["speedup"]
    assert micro > FLOOR, f"decoded dispatch slower than reference: {micro:.2f}x"
    assert e2e > FLOOR, f"optimized campaign slower than reference: {e2e:.2f}x"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller workloads, floor-only check (CI)",
    )
    args = parser.parse_args()
    artifact = run_benchmark(quick=args.quick)
    _report(artifact)
    micro = artifact["micro_uninstrumented_loop"]["speedup"]
    e2e = artifact["e2e_fuzz_campaign"]["speedup"]
    if args.quick:
        ok = micro > FLOOR and e2e > FLOOR
    else:
        ok = micro >= MICRO_TARGET and e2e >= E2E_TARGET
    if not ok:
        print("FAIL: speedup below target")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
