"""Execution-engine tiers + boot-snapshot reset — the perf gates.

Three measurements, the timed ones interleaved min-of-N (alternating
A/B/C runs and keeping each side's best round cancels machine noise;
the *minimum* is the right statistic for a deterministic workload where
every slowdown is external):

1. **Micro** — a tight uninstrumented store/load/add loop where dispatch
   is the largest possible fraction of the work, run under all three
   engine tiers on the *same* program: the reference isinstance-chain
   interpreter, pre-decoded closures (``engine="decoded"``), and
   compiled Python (``engine="codegen"``).  Every run must return the
   identical value — the speedup is only valid evidence if the tiers
   did the same work.  Targets: decoded >= 2x reference, codegen >=
   1.5x decoded.

2. **End-to-end** — a seeded ``OzzFuzzer`` campaign (the ``repro fuzz``
   workload): optimized engine (auto tier + snapshot reset) vs the
   reference configuration (``engine="reference"``,
   ``snapshot_reset=False``).  Target: >= 1.3x tests/sec.  The
   campaigns must also be *equivalent*: identical :class:`FuzzStats`
   and identical crash-title sets, asserted every round.

3. **Codegen determinism** — two fresh Python processes each generate
   the full kernel image's codegen sources and hash them
   (:func:`repro.kir.codegen.program_source_digest`); the digests must
   be byte-identical.  Guards against iteration-order or id()-derived
   nondeterminism leaking into generated code.

Results land in ``benchmarks/artifacts/interp_dispatch.json`` together
with an :data:`ENGINE_COUNTERS` snapshot (boots vs resets proves the
snapshot path actually carried the optimized campaign; promotions and
codegen cache hits prove the codegen tier actually engaged).

Run standalone (``python benchmarks/bench_interp_dispatch.py [--quick]``)
or under pytest, where the collected test enforces the CI floor:
every ratio must stay above 1.0 (no tier may lose to the one below it).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time

from repro.config import KernelConfig
from repro.fuzzer.fuzzer import OzzFuzzer
from repro.kernel.kernel import KernelImage
from repro.kir import Builder, Program
from repro.machine import Machine
from repro.mem.memory import DATA_BASE
from repro.oemu.profiler import ENGINE_COUNTERS

ARTIFACT_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "artifacts", "interp_dispatch.json"
)

MICRO_ITERS = 20_000   # 5 instructions per loop iteration
MICRO_ROUNDS = 7
E2E_ITERS = 150        # fuzz_one calls per campaign
E2E_ROUNDS = 9
SEED = 7

#: CI floor — no engine tier may lose to the tier below it.
FLOOR = 1.0
#: PR acceptance targets (reported in the artifact; enforced when the
#: benchmark is run standalone without --quick).
MICRO_TARGET = 2.0      # decoded vs reference
CODEGEN_TARGET = 1.5    # codegen vs decoded
E2E_TARGET = 1.3


def _loop_program() -> Program:
    """Tight uninstrumented loop: store, load, add, add, branch."""
    b = Builder("spin", params=["n"])
    i = b.mov(0)
    acc = b.mov(0)
    top = b.label()
    b.bind(top)
    b.store(DATA_BASE, 0, i)
    v = b.load(DATA_BASE, 0)
    b.add(acc, v, dst=acc)
    b.add(i, 1, dst=i)
    b.blt(i, b.reg("n"), top)
    b.ret(acc)
    return Program([b.function()])


PROGRAM = _loop_program()


def _micro_once(engine: str, iters: int) -> float:
    m = Machine(PROGRAM, engine=engine)
    thread = m.interp.spawn("spin", (iters,), fuel=10**9)
    t0 = time.perf_counter()
    m.interp.run(thread)
    elapsed = time.perf_counter() - t0
    # Outcome equality: every tier must compute the identical value.
    assert thread.retval == sum(range(iters)), (engine, thread.retval)
    return elapsed


def bench_micro(iters: int, rounds: int) -> dict:
    best = {"reference": float("inf"), "decoded": float("inf"),
            "codegen": float("inf")}
    for engine in best:   # warm-up: decode + codegen + bytecode caches
        _micro_once(engine, iters)
    for _ in range(rounds):
        for engine in best:
            best[engine] = min(best[engine], _micro_once(engine, iters))
    return {
        "loop_iters": iters,
        "rounds": rounds,
        "reference_s": best["reference"],
        "decoded_s": best["decoded"],
        "codegen_s": best["codegen"],
        "speedup": best["reference"] / best["decoded"],
        "codegen_vs_decoded": best["decoded"] / best["codegen"],
        "codegen_vs_reference": best["reference"] / best["codegen"],
    }


def _campaign(iters: int, **overrides) -> tuple:
    image = KernelImage(KernelConfig(**overrides))
    fuzzer = OzzFuzzer(image, seed=SEED)
    t0 = time.perf_counter()
    stats = fuzzer.run(iters)
    elapsed = time.perf_counter() - t0
    return elapsed, stats, frozenset(fuzzer.crashdb.unique_titles)


def bench_e2e(iters: int, rounds: int) -> dict:
    opt_t = ref_t = float("inf")
    tests = crashes = None
    for _ in range(rounds):
        t_o, stats_o, titles_o = _campaign(iters)
        t_r, stats_r, titles_r = _campaign(
            iters, engine="reference", snapshot_reset=False
        )
        # Differential gate: same input stream => same campaign outcome.
        assert stats_o == stats_r, (stats_o, stats_r)
        assert titles_o == titles_r, (titles_o, titles_r)
        tests, crashes = stats_o.tests_run, stats_o.crashes
        opt_t = min(opt_t, t_o)
        ref_t = min(ref_t, t_r)
    return {
        "campaign_iters": iters,
        "rounds": rounds,
        "tests_per_campaign": tests,
        "crashes_per_campaign": crashes,
        "outcomes_identical": True,
        "optimized_s": opt_t,
        "reference_s": ref_t,
        "optimized_tests_per_s": tests / opt_t,
        "reference_tests_per_s": tests / ref_t,
        "speedup": ref_t / opt_t,
    }


_DIGEST_SNIPPET = (
    "from repro.config import KernelConfig\n"
    "from repro.kernel.kernel import KernelImage\n"
    "from repro.kir.codegen import program_source_digest\n"
    "image = KernelImage(KernelConfig())\n"
    "print(program_source_digest(image.program))\n"
)


def check_codegen_determinism() -> dict:
    """Generated sources must hash identically across fresh processes.

    Each subprocess builds the kernel image from scratch (fresh id()
    space, fresh dict/set iteration seeds) and digests every generated
    source under both oemu variants.  A mismatch means nondeterminism
    leaked into codegen — which would break reproducible campaigns and
    the differential suite's byte-identical guarantee.
    """
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + os.pathsep + existing if existing else src
    digests = []
    for _ in range(2):
        out = subprocess.run(
            [sys.executable, "-c", _DIGEST_SNIPPET],
            capture_output=True, text=True, env=env, check=True,
        )
        digests.append(out.stdout.strip())
    assert digests[0] == digests[1], f"codegen nondeterminism: {digests}"
    return {"digest": digests[0], "processes": 2, "identical": True}


def run_benchmark(quick: bool = False) -> dict:
    micro_iters = MICRO_ITERS // 4 if quick else MICRO_ITERS
    micro_rounds = 3 if quick else MICRO_ROUNDS
    e2e_iters = 40 if quick else E2E_ITERS
    e2e_rounds = 2 if quick else E2E_ROUNDS

    ENGINE_COUNTERS.reset()
    micro = bench_micro(micro_iters, micro_rounds)
    e2e = bench_e2e(e2e_iters, e2e_rounds)
    determinism = check_codegen_determinism()

    artifact = {
        "quick": quick,
        "seed": SEED,
        "targets": {
            "micro_speedup": MICRO_TARGET,
            "codegen_vs_decoded": CODEGEN_TARGET,
            "e2e_speedup": E2E_TARGET,
        },
        "floor": FLOOR,
        "micro_uninstrumented_loop": micro,
        "e2e_fuzz_campaign": e2e,
        "codegen_determinism": determinism,
        "engine_counters": ENGINE_COUNTERS.snapshot(),
    }
    os.makedirs(os.path.dirname(ARTIFACT_PATH), exist_ok=True)
    with open(ARTIFACT_PATH, "w") as fh:
        json.dump(artifact, fh, indent=2)
    return artifact


def _report(artifact: dict) -> None:
    micro = artifact["micro_uninstrumented_loop"]
    e2e = artifact["e2e_fuzz_campaign"]
    print(
        f"micro: reference {micro['reference_s'] * 1e3:.1f}ms, decoded "
        f"{micro['decoded_s'] * 1e3:.1f}ms, codegen "
        f"{micro['codegen_s'] * 1e3:.1f}ms -> decoded {micro['speedup']:.2f}x "
        f"reference (target {MICRO_TARGET:.1f}x), codegen "
        f"{micro['codegen_vs_decoded']:.2f}x decoded (target {CODEGEN_TARGET:.1f}x)"
    )
    print(
        f"e2e:   optimized {e2e['optimized_tests_per_s']:.0f} tests/s vs reference "
        f"{e2e['reference_tests_per_s']:.0f} tests/s -> {e2e['speedup']:.2f}x "
        f"(target {E2E_TARGET:.1f}x); outcomes identical over "
        f"{e2e['rounds']} rounds of {e2e['tests_per_campaign']} tests"
    )
    print(f"codegen determinism: {artifact['codegen_determinism']['digest'][:16]}... "
          f"identical across {artifact['codegen_determinism']['processes']} processes")
    print(f"counters: {artifact['engine_counters']}")
    print(f"wrote {ARTIFACT_PATH}")


def test_dispatch_never_slower_than_reference():
    """CI floor: no engine tier may lose to the tier below it.

    The full >=2x / >=1.5x / >=1.3x acceptance numbers are checked when
    the benchmark runs standalone (see __main__); under pytest (CI
    machines with unpredictable load) only the never-slower floor is
    enforced.  Codegen determinism is exact and enforced everywhere.
    """
    artifact = run_benchmark(quick=True)
    _report(artifact)
    micro = artifact["micro_uninstrumented_loop"]["speedup"]
    codegen = artifact["micro_uninstrumented_loop"]["codegen_vs_decoded"]
    e2e = artifact["e2e_fuzz_campaign"]["speedup"]
    assert micro > FLOOR, f"decoded dispatch slower than reference: {micro:.2f}x"
    assert codegen > FLOOR, f"codegen slower than decoded: {codegen:.2f}x"
    assert e2e > FLOOR, f"optimized campaign slower than reference: {e2e:.2f}x"
    assert artifact["codegen_determinism"]["identical"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller workloads, floor-only check (CI)",
    )
    args = parser.parse_args()
    artifact = run_benchmark(quick=args.quick)
    _report(artifact)
    micro = artifact["micro_uninstrumented_loop"]["speedup"]
    codegen = artifact["micro_uninstrumented_loop"]["codegen_vs_decoded"]
    e2e = artifact["e2e_fuzz_campaign"]["speedup"]
    if args.quick:
        ok = micro > FLOOR and codegen > FLOOR and e2e > FLOOR
    else:
        ok = (micro >= MICRO_TARGET and codegen >= CODEGEN_TARGET
              and e2e >= E2E_TARGET)
    if not ok:
        print("FAIL: speedup below target")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
