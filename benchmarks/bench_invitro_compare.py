"""§3 / §7 — in-vivo vs in-vitro testing.

The in-vitro baseline analyzes recorded traces offline.  It can flag
reordering *candidates*, but without live allocator state it cannot
confirm consequences: for the RDS bug it sees suspicious store pairs yet
cannot tell that the reordering produces a slab-out-of-bounds read —
while OZZ's in-vivo run produces the full KASAN report with object
provenance.  This is the paper's double-free/OOB argument made
executable.
"""

from __future__ import annotations

import pytest

from repro.bench.campaign import sti_for_bug
from repro.bench.tables import render_table
from repro.fuzzer.baselines import InVitroAnalyzer
from repro.fuzzer.hints import calculate_hints
from repro.fuzzer.mti import MTI, run_mti
from repro.fuzzer.sti import profile_sti
from repro.kernel import bugs


@pytest.fixture(scope="module")
def rds_material(buggy_image):
    spec = bugs.get("t3_rds_xmit")
    sti, pair = sti_for_bug(spec)
    profile = profile_sti(buggy_image, sti)
    return spec, sti, pair, profile


def test_invitro_cannot_confirm(benchmark, rds_material, buggy_image):
    spec, sti, pair, profile = rds_material
    i, j = pair
    analyzer = InVitroAnalyzer()

    candidates = benchmark.pedantic(
        analyzer.analyze_pair,
        args=(profile.profiles[i].events, profile.profiles[j].events),
        rounds=5,
        iterations=1,
    )

    # In-vivo: actually run the reordering and get the KASAN report.
    crash = None
    for hint in calculate_hints(profile.profiles[i], profile.profiles[j]):
        result = run_mti(buggy_image, MTI(sti=sti, pair=pair, hint=hint))
        if result.crashed and result.crash.title == spec.title:
            crash = result.crash
            break

    print()
    print(
        render_table(
            "In-vivo vs in-vitro on the RDS bug (Figure 8)",
            ["approach", "raw findings", "confirmed consequence"],
            [
                ("in-vitro (offline trace analysis)", f"{len(candidates)} candidates", "none (no runtime context)"),
                ("OZZ in-vivo", "1 crash", crash.title if crash else "-"),
            ],
        )
    )
    if crash:
        print(crash.render())
    assert candidates, "in-vitro should at least flag candidates"
    assert not analyzer.can_confirm_consequences
    assert crash is not None and "slab-out-of-bounds" in crash.title
    # The in-vivo report carries allocator provenance; in-vitro cannot.
    assert "allocated by thread" in crash.detail
