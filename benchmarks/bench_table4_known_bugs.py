"""Table 4 — reproducing previously-reported OOO bugs (paper §6.2).

For each known bug: build the syzbot-style input, sweep scheduling
hints, and count the tests needed to trigger it.  Paper shape: 8/9
reproduced within tens of tests, tls_err_abort as ✓* (wrong return
value, no crash), sbitmap ✗ (thread migration) but ✓ with the manual
per-CPU modification.
"""

from __future__ import annotations

import pytest

from repro.bench.campaign import reproduce_bug, run_table4
from repro.bench.tables import render_table
from repro.kernel import bugs


@pytest.fixture(scope="module")
def table4_results():
    return run_table4(with_sbitmap_modification=True)


def test_table4_reproduction(benchmark, table4_results):
    spec = bugs.get("t4_watch_queue")
    benchmark.pedantic(lambda: reproduce_bug(spec), rounds=5, iterations=1)

    rows = []
    for r in table4_results:
        base_id = r.bug_id.split("+", 1)[0]
        spec = bugs.get(base_id)
        rows.append(
            (
                f"#{spec.number}" + ("+manual" if r.bug_id.endswith("+manual") else ""),
                spec.subsystem,
                spec.kernel_version,
                r.checkmark(),
                r.n_tests if r.reproduced else "-",
                r.trigger_type or spec.reorder_type,
            )
        )
    print()
    print(
        render_table(
            "Table 4: previously-reported OOO bugs",
            ["ID", "Subsystem", "Version", "Reproduced?", "# of tests", "Type"],
            rows,
            note="paper: 8/9 reproduced (#6 sbitmap fails without the manual "
            "per-CPU modification; #8 is a wrong-return-value symptom)",
        )
    )

    by_id = {r.bug_id: r for r in table4_results}
    # Paper shape assertions:
    reproduced = [r for r in table4_results if "+" not in r.bug_id and r.reproduced]
    assert len(reproduced) == 8
    assert not by_id["t4_sbitmap"].reproduced
    assert by_id["t4_sbitmap+manual"].reproduced
    assert by_id["t4_tls_err"].checkmark() == "v*"
    # Reordering types must match the paper's Type column.
    for r in reproduced:
        spec = bugs.get(r.bug_id)
        assert r.trigger_type == spec.reorder_type, (r.bug_id, r.trigger_type)
