"""OEMU mechanism microbenchmarks (Figures 2, 3, 4, 5 cost side).

Times the primitive operations the paper's mechanisms add: the
instrumentation pass itself, a delayed store round trip through the
virtual store buffer, a versioned load through the store history, and
the two Figure 5 test shapes end to end.
"""

from __future__ import annotations

import pytest

from repro.config import KernelConfig
from repro.fuzzer.hints import calculate_hints
from repro.fuzzer.sti import STI, Call, profile_sti
from repro.kernel.kernel import Kernel, KernelImage
from repro.kir import Builder, Program
from repro.kir.insn import Load, Store
from repro.machine import Machine
from repro.mem.memory import DATA_BASE
from repro.oemu.instrument import instrument_program


def test_instrumentation_pass(benchmark, plain_image):
    """Figure 2: rewriting the whole kernel program."""
    program, report = benchmark(lambda: instrument_program(plain_image.plain_program))
    assert report.rewritten > 0
    print(
        f"\npass rewrote {report.rewritten}/{report.total_insns} instructions "
        f"across {report.functions} functions ({report.fraction:.0%})"
    )


def _delayed_store_machine():
    b = Builder("w")
    b.store(DATA_BASE, 0, 1)
    b.store(DATA_BASE + 8, 0, 2)
    b.wmb()
    b.ret()
    program, _ = instrument_program(Program([b.function()]))
    return program


def test_delayed_store_roundtrip(benchmark):
    """Figure 3: delay, forward, flush."""
    program = _delayed_store_machine()

    def run():
        m = Machine(program)
        t = m.spawn("w")
        store = next(i for i in program.function("w").insns if isinstance(i, Store))
        m.oemu.delay_store_at(t.thread_id, store.addr)
        m.interp.run(t)
        return m.memory.load(DATA_BASE, 8)

    assert benchmark(run) == 1


def test_versioned_load_roundtrip(benchmark):
    """Figure 4: store history reconstruction."""
    b = Builder("r")
    b.rmb()
    v = b.load(DATA_BASE, 0)
    b.ret(v)
    rb = Builder("w")
    rb.store(DATA_BASE, 0, 7)
    rb.ret()
    program, _ = instrument_program(Program([b.function(), rb.function()]))

    def run():
        m = Machine(program)
        reader = m.spawn("r", cpu=0)
        load = next(i for i in program.function("r").insns if isinstance(i, Load))
        m.oemu.read_old_value_at(reader.thread_id, load.addr)
        m.interp.step(reader)  # rmb
        m.run("w", cpu=1)
        return m.interp.run(reader)

    assert benchmark(run) == 0  # the old value


def test_hint_calculation(benchmark, buggy_image):
    """Algorithm 1+2 over a realistic syscall pair."""
    sti = STI((Call("watch_queue_create"), Call("watch_queue_post", (9,)), Call("pipe_read")))
    profile = profile_sti(buggy_image, sti)
    hints = benchmark(
        lambda: calculate_hints(profile.profiles[1], profile.profiles[2])
    )
    assert hints


def test_kernel_boot(benchmark, buggy_image):
    """Fresh-kernel cost (paid per MTI, cf. VM reuse in the baseline)."""
    kernel = benchmark(lambda: Kernel(buggy_image))
    assert kernel.glob("wq_pipe")
