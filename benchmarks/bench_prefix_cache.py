"""Prefix-cache gate: the MTI fan-out must not re-pay the prefix.

Workload: a fixed corpus of *long* syscall programs — triple
concatenations of the seed STIs (8-13 calls each), the shape syzkaller
programs actually have — fuzzed at the decoded tier with a pair budget
of 10.  Prefix length is what the cache amortizes: for a pair at
position ``i`` the fan-out re-executes ``i`` calls per interleaving
without the cache, so long programs are where the mechanism earns its
keep (the seed corpus' 2-4 call programs spend under a tenth of their
time in prefixes and bound any cache's effect at ~1.1x; these spend
over a third of their MTI execution there).  Both sides run the same
fixed engine tier so the comparison isolates the cache.

Measurement is interleaved min-of-N over per-process CPU time
(alternating cached/uncached order each round and keeping each side's
best cancels machine noise; the minimum is the right statistic for a
deterministic workload where every slowdown is external).  The median
of the per-round paired ratios is recorded alongside as a
noise-robustness cross-check.

The speedup is only valid evidence if the cache changed *nothing but
time*, so every round asserts campaign equivalence — identical
:class:`FuzzStats` and identical crash-title sets — and the run is
required to be non-vacuous: the cached campaign's
:data:`ENGINE_COUNTERS` delta must show ``prefix_hits > 0`` and
``calls_skipped > 0`` (a cache that never fired would pass a timing
floor trivially).

Results land in ``benchmarks/artifacts/prefix_cache.json`` with the
counter deltas for both configurations (the uncached side must show
*zero* prefix activity — proving the toggle isolates the mechanism
under test).

Run standalone (``python benchmarks/bench_prefix_cache.py [--quick]``)
or under pytest, where the collected test enforces the CI floor: the
cached campaign must never be slower than the uncached one.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import time

from repro.config import KernelConfig
from repro.fuzzer.fuzzer import OzzFuzzer
from repro.fuzzer.sti import STI, Call, ResourceRef
from repro.fuzzer.templates import seed_inputs
from repro.kernel.kernel import KernelImage
from repro.oemu.profiler import ENGINE_COUNTERS

ARTIFACT_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "artifacts", "prefix_cache.json"
)

CORPUS_SIZE = 16       # concatenated seed programs per campaign
E2E_ROUNDS = 14
SEED = 7
ENGINE = "decoded"     # same fixed tier on both sides
MAX_PAIRS = 10

#: CI floor — the cached campaign must never lose to the uncached one.
FLOOR = 1.0
#: PR acceptance target (reported in the artifact; enforced when the
#: benchmark is run standalone without --quick).
E2E_TARGET = 1.2

PREFIX_KEYS = ("prefix_snapshots", "prefix_hits", "calls_skipped")


def _shift(call: Call, offset: int) -> Call:
    return Call(
        call.name,
        tuple(
            ResourceRef(a.index + offset) if isinstance(a, ResourceRef) else a
            for a in call.args
        ),
    )


def _concat(stis) -> STI:
    """Concatenate STIs, rebasing each one's resource refs."""
    calls: list = []
    for sti in stis:
        offset = len(calls)
        calls.extend(_shift(c, offset) for c in sti.calls)
    return STI(tuple(calls))


def _corpus() -> list:
    """Long programs: triple concatenations of the seed STIs (8-13
    calls), picked by a fixed index formula so the corpus is identical
    on every run."""
    seeds = list(seed_inputs())
    n = len(seeds)
    return [
        _concat((seeds[i], seeds[(i * 7 + j) % n], seeds[(i * 3 + 2 * j) % n]))
        for i in range(4)
        for j in range(4)
    ][:CORPUS_SIZE]


def _campaign(*, prefix_cache: bool) -> tuple:
    image = KernelImage(KernelConfig(prefix_cache=prefix_cache, engine=ENGINE))
    fuzzer = OzzFuzzer(
        image, seed=SEED, use_seeds=False, max_pairs_per_sti=MAX_PAIRS
    )
    corpus = _corpus()
    base = ENGINE_COUNTERS.snapshot()
    t0 = time.process_time()
    for sti in corpus:
        fuzzer.fuzz_one(sti)
    elapsed = time.process_time() - t0
    delta = ENGINE_COUNTERS.diff(base)
    return elapsed, fuzzer.stats, frozenset(fuzzer.crashdb.unique_titles), delta


def bench_e2e(rounds: int) -> dict:
    cached_t = uncached_t = float("inf")
    tests = crashes = None
    cached_counters = {k: 0 for k in PREFIX_KEYS}
    paired_ratios = []
    for r in range(rounds):
        order = (True, False) if r % 2 == 0 else (False, True)
        timings, outcomes = {}, {}
        for pc in order:
            t, stats, titles, delta = _campaign(prefix_cache=pc)
            timings[pc], outcomes[pc] = t, (stats, titles, delta)
        stats_c, titles_c, delta_c = outcomes[True]
        stats_u, titles_u, delta_u = outcomes[False]
        # Differential gate: the cache may only change timing.
        assert stats_c == stats_u, (stats_c, stats_u)
        assert titles_c == titles_u, (titles_c, titles_u)
        # Non-vacuity: the cached side actually skipped prefix work,
        # the uncached side provably ran none of the machinery.
        assert delta_c["prefix_hits"] > 0, delta_c
        assert delta_c["calls_skipped"] > 0, delta_c
        assert all(delta_u[k] == 0 for k in PREFIX_KEYS), delta_u
        for k in PREFIX_KEYS:
            cached_counters[k] += delta_c[k]
        tests, crashes = stats_c.tests_run, stats_c.crashes
        paired_ratios.append(timings[False] / timings[True])
        cached_t = min(cached_t, timings[True])
        uncached_t = min(uncached_t, timings[False])
    return {
        "engine": ENGINE,
        "corpus_size": CORPUS_SIZE,
        "max_pairs_per_sti": MAX_PAIRS,
        "rounds": rounds,
        "tests_per_campaign": tests,
        "crashes_per_campaign": crashes,
        "outcomes_identical": True,
        "cached_s": cached_t,
        "uncached_s": uncached_t,
        "cached_tests_per_s": tests / cached_t,
        "uncached_tests_per_s": tests / uncached_t,
        "speedup": uncached_t / cached_t,
        "median_paired_speedup": statistics.median(paired_ratios),
        "cached_prefix_counters": cached_counters,
    }


def run_benchmark(quick: bool = False) -> dict:
    rounds = 2 if quick else E2E_ROUNDS

    ENGINE_COUNTERS.reset()
    e2e = bench_e2e(rounds)

    artifact = {
        "quick": quick,
        "seed": SEED,
        "targets": {"e2e_speedup": E2E_TARGET},
        "floor": FLOOR,
        "e2e_fuzz_campaign": e2e,
        "engine_counters": ENGINE_COUNTERS.snapshot(),
    }
    os.makedirs(os.path.dirname(ARTIFACT_PATH), exist_ok=True)
    with open(ARTIFACT_PATH, "w") as fh:
        json.dump(artifact, fh, indent=2)
    return artifact


def _report(artifact: dict) -> None:
    e2e = artifact["e2e_fuzz_campaign"]
    counters = e2e["cached_prefix_counters"]
    print(
        f"e2e ({e2e['engine']} tier): cached {e2e['cached_tests_per_s']:.0f} "
        f"tests/s vs uncached {e2e['uncached_tests_per_s']:.0f} tests/s -> "
        f"{e2e['speedup']:.2f}x (target {E2E_TARGET:.1f}x); outcomes "
        f"identical over {e2e['rounds']} rounds of "
        f"{e2e['tests_per_campaign']} tests"
    )
    print(
        f"cache: {counters['prefix_hits']} hits, "
        f"{counters['prefix_snapshots']} snapshots, "
        f"{counters['calls_skipped']} prefix calls skipped"
    )
    print(f"wrote {ARTIFACT_PATH}")


def test_prefix_cache_never_slower():
    """CI floor: the cached campaign must never lose to the uncached one.

    The full >=1.2x acceptance number is checked when the benchmark runs
    standalone (see __main__); under pytest (CI machines with
    unpredictable load) only the never-slower floor is enforced.  The
    equivalence and non-vacuity asserts inside bench_e2e are exact and
    enforced everywhere.
    """
    artifact = run_benchmark(quick=True)
    _report(artifact)
    e2e = artifact["e2e_fuzz_campaign"]["speedup"]
    assert e2e > FLOOR, f"cached campaign slower than uncached: {e2e:.2f}x"
    assert artifact["e2e_fuzz_campaign"]["outcomes_identical"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller workload, floor-only check (CI)",
    )
    args = parser.parse_args()
    artifact = run_benchmark(quick=args.quick)
    _report(artifact)
    e2e = artifact["e2e_fuzz_campaign"]["speedup"]
    if args.quick:
        ok = e2e > FLOOR
    else:
        ok = e2e >= E2E_TARGET
    if not ok:
        print("FAIL: speedup below target")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
