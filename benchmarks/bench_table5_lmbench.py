"""Table 5 — LMBench microbenchmark: OEMU instrumentation overhead
(paper §6.3.1).

Measures the paper's operation mix on the plain kernel build and on the
OEMU-instrumented build (with the callbacks recording accesses, as OZZ
runs them).  Paper shape: every row is slower under OEMU; the magnitude
compresses here because the plain "machine" is itself an interpreter
(see EXPERIMENTS.md).  Also demonstrates the §6.3.1 mitigation:
selective instrumentation brings untargeted paths back to ~1x.
"""

from __future__ import annotations

import pytest

from repro.bench.lmbench import WORKLOADS, run_lmbench
from repro.bench.tables import render_table
from repro.config import KernelConfig
from repro.kernel.kernel import Kernel, KernelImage


@pytest.fixture(scope="module")
def lmbench_rows():
    return run_lmbench(reps=40)


def test_lmbench_overheads(benchmark, lmbench_rows, plain_image):
    kernel = Kernel(plain_image)
    benchmark(lambda: kernel.run_syscall("null"))

    rows = [
        (r.name, f"{r.plain_us:.1f}", f"{r.oemu_us:.1f}", f"{r.overhead:.2f}x")
        for r in lmbench_rows
    ]
    print()
    print(
        render_table(
            "Table 5: LMBench microbenchmark",
            ["Tests", "plain (us)", "w/ OEMU (us)", "Overhead"],
            rows,
            note="paper: 3.0x-59.0x on native hardware; ratios compress on an "
            "interpreted substrate (the per-instruction baseline is already slow)",
        )
    )
    # Shape: instrumentation slows the kernel down across the board.
    # (Individual fast rows can jitter on a loaded host, so require the
    # aggregate and near-universal per-row slowdown.)
    import math

    geomean = math.exp(sum(math.log(r.overhead) for r in lmbench_rows) / len(lmbench_rows))
    assert geomean > 1.1, geomean
    assert sum(1 for r in lmbench_rows if r.overhead > 1.0) >= len(lmbench_rows) - 1


def test_selective_instrumentation(benchmark):
    """§6.3.1: instrumenting only lockless-heavy subsystems removes the
    overhead from everything else."""
    rows = run_lmbench(reps=20, workloads=WORKLOADS[:3], instrument_only=("tls", "rds", "xsk"))
    benchmark.pedantic(
        lambda: run_lmbench(reps=2, workloads=WORKLOADS[:1]), rounds=3, iterations=1
    )
    print()
    print(
        render_table(
            "Selective instrumentation (tls/rds/xsk only)",
            ["Tests", "plain (us)", "selective (us)", "Overhead"],
            [(r.name, f"{r.plain_us:.1f}", f"{r.oemu_us:.1f}", f"{r.overhead:.2f}x") for r in rows],
        )
    )
    full = run_lmbench(reps=20, workloads=WORKLOADS[:3])
    # ramfs/core paths get cheaper when they are not instrumented.
    for sel, f in zip(rows, full):
        assert sel.overhead <= f.overhead * 1.2, (sel.name, sel.overhead, f.overhead)
