"""Coverage union micro-benchmark — bitmap vs address-set merging.

``merge_shards`` used to union per-shard coverage as pickled Python
``set``s of addresses; the worker pool replaced that with the paged
int-bitmap :class:`repro.fuzzer.kcov.CoverageMap`, whose union is a
handful of word-wise ``|`` operations per 8192-address page and whose
wire form ships only the bytes that are actually set.  This benchmark
pins down both claims on a synthetic workload shaped like a real
campaign (many shards with heavily overlapping PC sets):

1. **merge speed** — folding N shard coverages into one accumulator,
   bitmap vs frozenset-of-addresses.  Gate: the bitmap must win.
2. **wire size** — the serialized form a worker ships per batch,
   ``CoverageMap.to_bytes`` vs pickling the address set.

Results land in ``benchmarks/artifacts/coverage_merge.json``.  Run
standalone (``python benchmarks/bench_coverage_merge.py [--quick]``)
or under pytest, where the collected test enforces the speed gate.
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import random
import time

from repro.bench.tables import render_table
from repro.fuzzer.kcov import CoverageMap

ARTIFACT_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "artifacts", "coverage_merge.json"
)

NSHARDS = 16
ADDRS_PER_SHARD = 4_000
SHARED_FRACTION = 0.8   # fraction of each shard's PCs drawn from a common pool
#: Synthetic kernel text segment the PCs land in — real shard coverage
#: clusters word-aligned sites in a few hundred KiB of text (measured:
#: a seed campaign batch covers ~18 bitmap pages around 0x40c000), so
#: the benchmark draws from the same shape rather than a sparse random
#: address space.
TEXT_BASE = 0x40_0000
TEXT_SIZE = 512 * 1024
ROUNDS = 25
QUICK_ROUNDS = 5
SEED = 11

#: The bitmap union must beat the set union it replaced.
FLOOR = 1.0


def _block(rng: random.Random) -> list:
    """One executed basic block: a run of consecutive word-aligned PCs.

    Coverage is not uniform random sites — a covered block contributes
    its whole instruction run, which is exactly the density the paged
    bitmap exploits.
    """
    start = TEXT_BASE + rng.randrange(0, TEXT_SIZE // 4) * 4
    return [start + 4 * i for i in range(rng.randrange(8, 40))]


def _shard_addr_sets(rng: random.Random) -> list:
    """N address sets shaped like shard coverage: mostly-shared hot blocks."""
    common = [_block(rng) for _ in range(ADDRS_PER_SHARD // 8)]
    shards = []
    for _ in range(NSHARDS):
        addrs = set()
        target_shared = int(ADDRS_PER_SHARD * SHARED_FRACTION)
        while len(addrs) < target_shared:
            addrs.update(rng.choice(common))
        while len(addrs) < ADDRS_PER_SHARD:
            addrs.update(_block(rng))
        shards.append(frozenset(addrs))
    return shards


def _merge_sets(shards: list) -> set:
    acc = set()
    for s in shards:
        acc |= s
    return acc


def _merge_bitmaps(shards: list) -> CoverageMap:
    acc = CoverageMap()
    for m in shards:
        acc.merge(m)
    return acc


def _best_of(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_benchmark(quick: bool = False) -> dict:
    rounds = QUICK_ROUNDS if quick else ROUNDS
    rng = random.Random(SEED)
    addr_sets = _shard_addr_sets(rng)
    bitmaps = [CoverageMap.from_addrs(s) for s in addr_sets]

    merged_set = _merge_sets(addr_sets)
    merged_map = _merge_bitmaps(bitmaps)
    assert set(merged_map.addrs) == merged_set, "bitmap union lost addresses"

    set_s = _best_of(lambda: _merge_sets(addr_sets), rounds)
    map_s = _best_of(lambda: _merge_bitmaps(bitmaps), rounds)

    set_wire = sum(len(pickle.dumps(s)) for s in addr_sets)
    map_wire = sum(len(m.to_bytes()) for m in bitmaps)

    # What actually crosses the worker message queue over a campaign:
    # the v1 protocol re-shipped the worker's *cumulative* address set
    # at every progress report, the v2 protocol ships only the bits not
    # yet acknowledged (CoverageMap.delta against the sent ledger).
    v1_proto = 0
    acc_set = set()
    for s in addr_sets:
        acc_set |= s
        v1_proto += len(pickle.dumps(acc_set))
    v2_proto = 0
    full = CoverageMap()
    sent = CoverageMap()
    for m in bitmaps:
        full.merge(m)
        d = full.delta(sent)
        v2_proto += len(d.to_bytes())
        sent = sent.union(d)
    assert sent == full, "delta ledger diverged from full coverage"

    artifact = {
        "quick": quick,
        "seed": SEED,
        "nshards": NSHARDS,
        "addrs_per_shard": ADDRS_PER_SHARD,
        "shared_fraction": SHARED_FRACTION,
        "rounds": rounds,
        "unique_addrs": len(merged_set),
        "floor": FLOOR,
        "merge": {
            "set_s": set_s,
            "bitmap_s": map_s,
            "speedup": set_s / map_s if map_s > 0 else 0.0,
        },
        "wire": {
            "pickled_sets_bytes": set_wire,
            "bitmap_bytes": map_wire,
            "ratio": set_wire / map_wire if map_wire else 0.0,
        },
        "protocol": {
            "v1_cumulative_pickle_bytes": v1_proto,
            "v2_delta_bytes": v2_proto,
            "ratio": v1_proto / v2_proto if v2_proto else 0.0,
        },
    }
    os.makedirs(os.path.dirname(ARTIFACT_PATH), exist_ok=True)
    with open(ARTIFACT_PATH, "w") as fh:
        json.dump(artifact, fh, indent=2)
    return artifact


def _report(artifact: dict) -> None:
    m, w = artifact["merge"], artifact["wire"]
    p = artifact["protocol"]
    print()
    print(
        render_table(
            "Coverage union: paged bitmap vs address set",
            ["metric", "set", "bitmap", "ratio"],
            [
                (
                    "merge time",
                    f"{m['set_s'] * 1e3:.2f}ms",
                    f"{m['bitmap_s'] * 1e3:.2f}ms",
                    f"{m['speedup']:.2f}x faster",
                ),
                (
                    "wire bytes (one full map)",
                    f"{w['pickled_sets_bytes']:,}",
                    f"{w['bitmap_bytes']:,}",
                    f"{w['ratio']:.2f}x",
                ),
                (
                    "wire bytes (campaign protocol)",
                    f"{p['v1_cumulative_pickle_bytes']:,}",
                    f"{p['v2_delta_bytes']:,}",
                    f"{p['ratio']:.2f}x smaller",
                ),
            ],
            note=(
                f"{artifact['nshards']} shards x "
                f"{artifact['addrs_per_shard']} addrs, "
                f"{artifact['unique_addrs']} unique"
            ),
        )
    )
    print(f"wrote {ARTIFACT_PATH}")


def test_bitmap_union_beats_set_union():
    """CI gate: the CoverageMap fold must not lose to the set fold."""
    artifact = run_benchmark(quick=True)
    _report(artifact)
    assert artifact["merge"]["speedup"] > FLOOR, (
        f"bitmap union slower than set union: "
        f"{artifact['merge']['speedup']:.2f}x"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="fewer rounds (CI)")
    args = parser.parse_args()
    artifact = run_benchmark(quick=args.quick)
    _report(artifact)
    if artifact["merge"]["speedup"] <= FLOOR:
        print("FAIL: bitmap union slower than set union")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
