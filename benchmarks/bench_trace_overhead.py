"""ExecTrace bus overhead — the no-op sink must stay under 5%.

Every retired instruction passes the bus's dispatch point
(``Interpreter.step``), so the refactor's hot-path budget is explicit:
with the default :data:`~repro.trace.sink.NULL_SINK` attached, the
dispatch costs one attribute load and a falsy branch per step — no
event object is ever constructed.

The A/B here pits the shipped interpreter (NULL_SINK attached) against
a ``_BaselineInterpreter`` whose ``step`` replicates the pre-ExecTrace
body with no trace dispatch at all, on the most adversarial workload: a
tight arithmetic + load/store loop where per-step dispatch is the
largest possible fraction of the work.  Real fuzzing workloads
(syscalls, OEMU callbacks, oracles) only dilute the ratio further.

Informational numbers for the recording sinks (ring recorder, metrics)
ride along, and everything lands in
``benchmarks/artifacts/trace_overhead.json``.
"""

from __future__ import annotations

import json
import os
import time

from repro.errors import ExecutionLimitExceeded
from repro.kir import Builder, Program
from repro.kir.interp import HelperRetry, Interpreter
from repro.machine import Machine
from repro.mem.memory import DATA_BASE
from repro.oemu.instrument import instrument_program
from repro.trace import TeeSink, TraceMetrics, TraceRecorder

ARTIFACT_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "artifacts", "trace_overhead.json"
)

LOOP_ITERS = 15_000   # ~6 instructions per iteration, well under fuel
ROUNDS = 9            # interleaved min-of-N keeps scheduler noise out
OVERHEAD_BUDGET = 0.05


class _BaselineInterpreter(Interpreter):
    """``Interpreter.step`` exactly as it was before the ExecTrace
    refactor: same body, no trace dispatch.  The A side of the A/B."""

    def step(self, thread):
        if thread.finished:
            return False
        if thread.fuel <= 0:
            raise ExecutionLimitExceeded(
                f"thread {thread.thread_id} exceeded fuel in {thread.current_function}"
            )
        thread.fuel -= 1
        thread.steps += 1
        frame = thread.frames[-1]
        insn = frame.function.insns[frame.index]
        machine = self.machine
        if machine.kcov is not None:
            machine.kcov.on_insn(thread.thread_id, insn.addr)
        advance = True
        try:
            advance = self._execute(thread, frame, insn)
        except HelperRetry:
            return True
        if advance and not thread.finished and thread.frames and thread.frames[-1] is frame:
            frame.index += 1
        return not thread.finished


def _loop_program() -> Program:
    """A tight loop: store, load, two adds, compare-branch per iteration."""
    b = Builder("spin", params=["n"])
    i = b.mov(0)
    acc = b.mov(0)
    top = b.label()
    b.bind(top)
    b.store(DATA_BASE, 0, i)
    v = b.load(DATA_BASE, 0)
    b.add(acc, v, dst=acc)
    b.add(i, 1, dst=i)
    b.blt(i, b.reg("n"), top)
    b.ret(acc)
    prog, _ = instrument_program(Program([b.function()]))
    return prog


PROGRAM = _loop_program()
EXPECTED = sum(range(LOOP_ITERS))


def _run(make_machine) -> int:
    m = make_machine()
    return m.run("spin", (LOOP_ITERS,))


def _time_once(make_machine) -> float:
    t0 = time.perf_counter()
    result = _run(make_machine)
    elapsed = time.perf_counter() - t0
    assert result == EXPECTED
    return elapsed


def _null_machine() -> Machine:
    return Machine(PROGRAM)  # default sink: NULL_SINK


def _baseline_machine() -> Machine:
    m = Machine(PROGRAM)
    m.interp = _BaselineInterpreter(m)
    return m


def test_null_sink_overhead_under_budget():
    """The tentpole's perf gate: NULL_SINK dispatch costs < 5%."""
    # Warm up both paths (bytecode caches, allocator pools).
    _time_once(_baseline_machine)
    _time_once(_null_machine)
    baseline = nullsink = float("inf")
    for _ in range(ROUNDS):
        baseline = min(baseline, _time_once(_baseline_machine))
        nullsink = min(nullsink, _time_once(_null_machine))
    overhead = nullsink / baseline - 1.0

    # Informational: what attaching a real sink costs on the same loop.
    recorder = TraceRecorder()
    rec_time = _time_once(lambda: Machine(PROGRAM, trace=recorder))
    metrics = TraceMetrics()
    met_time = _time_once(lambda: Machine(PROGRAM, trace=metrics))
    tee_time = _time_once(
        lambda: Machine(PROGRAM, trace=TeeSink([TraceRecorder(), TraceMetrics()]))
    )

    # store + load + 2 adds + branch retire per iteration; 2 movs + ret outside.
    steps = LOOP_ITERS * 5 + 3
    artifact = {
        "workload": {
            "description": "tight store/load/add loop (adversarial for dispatch)",
            "loop_iters": LOOP_ITERS,
            "approx_steps": steps,
            "rounds": ROUNDS,
        },
        "baseline_no_dispatch_s": baseline,
        "null_sink_s": nullsink,
        "null_sink_overhead": overhead,
        "budget": OVERHEAD_BUDGET,
        "sinks": {
            "recorder_s": rec_time,
            "recorder_slowdown": rec_time / baseline,
            "metrics_s": met_time,
            "metrics_slowdown": met_time / baseline,
            "tee_recorder_metrics_s": tee_time,
            "tee_slowdown": tee_time / baseline,
        },
        "metrics_sample": metrics.to_json_dict(),
    }
    os.makedirs(os.path.dirname(ARTIFACT_PATH), exist_ok=True)
    with open(ARTIFACT_PATH, "w") as fh:
        json.dump(artifact, fh, indent=2)

    print(
        f"\nno-op sink: {overhead:+.2%} vs no-dispatch baseline "
        f"(budget {OVERHEAD_BUDGET:.0%}); recorder {rec_time / baseline:.2f}x, "
        f"metrics {met_time / baseline:.2f}x, tee {tee_time / baseline:.2f}x"
    )
    print(f"wrote {ARTIFACT_PATH}")

    # The recording sinks really consumed the stream.
    assert recorder.index >= steps
    assert metrics.events_by_kind["step"] >= steps
    assert overhead < OVERHEAD_BUDGET, (
        f"NULL_SINK dispatch overhead {overhead:.2%} exceeds "
        f"{OVERHEAD_BUDGET:.0%} budget"
    )
