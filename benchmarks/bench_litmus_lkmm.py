"""Figures 3, 4, 10 and §3.3 — OEMU behaviour on litmus tests.

Exhaustively enumerates every interleaving × OEMU-control combination
for the litmus suite and checks the reachable outcome sets against the
LKMM ground truth: weak outcomes appear exactly when the LKMM allows
them; forbidden outcomes never appear.  Figure 10's Rust example is the
SB shape (relaxed orderings): the assertion-violating outcome is
reachable under OEMU and gone with smp_mb.
"""

from __future__ import annotations

import pytest

from repro.bench.tables import render_table
from repro.litmus import LitmusRunner, standard_suite, store_buffering


@pytest.fixture(scope="module")
def suite_verdicts():
    return [LitmusRunner(t).check() for t in standard_suite()]


def test_litmus_suite_lkmm_compliance(benchmark, suite_verdicts):
    benchmark.pedantic(
        lambda: LitmusRunner(store_buffering(False)).check(), rounds=3, iterations=1
    )
    rows = []
    for v in suite_verdicts:
        weak_only = sorted(v.weak_observed - v.sc_observed)
        rows.append(
            (
                v.test.name,
                len(v.sc_observed),
                weak_only if weak_only else "-",
                "none" if not v.forbidden_hit else sorted(v.forbidden_hit),
                v.runs,
                "OK" if v.ok else "FAIL",
            )
        )
    print()
    print(
        render_table(
            "Litmus suite: OEMU vs LKMM (SS3.3, SS10.1)",
            ["test", "#SC outcomes", "weak-only outcomes", "forbidden hit", "runs", "verdict"],
            rows,
        )
    )
    assert all(v.ok for v in suite_verdicts)


def test_figure10_rust_relaxed(benchmark):
    """Figure 10: Ordering::Relaxed SB — the assertion x==1 || y==1 can
    fail only under reordering; OEMU reaches it, smp_mb forbids it."""
    relaxed = LitmusRunner(store_buffering(False)).check()
    fenced = benchmark.pedantic(
        lambda: LitmusRunner(store_buffering(True)).check(), rounds=3, iterations=1
    )
    violation = (0, 0)  # both threads read 0: assert!(x == 1 || y == 1) fails
    assert violation in relaxed.weak_observed
    assert violation not in relaxed.sc_observed  # needs reordering, not scheduling
    assert violation not in fenced.weak_observed
    print("\nFigure 10: relaxed SB reaches the assertion violation under "
          "OEMU; smp_mb() removes it")
