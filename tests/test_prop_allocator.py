"""Property tests on the slab allocator's safety invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem.allocator import AllocatorViolation, SIZE_CLASSES, SlabAllocator
from repro.mem.memory import Memory
from repro.mem.shadow import ShadowMemory, ShadowState

req_sizes = st.integers(min_value=1, max_value=SIZE_CLASSES[-1])


@st.composite
def alloc_free_scripts(draw):
    """A sequence of 'alloc size' / 'free idx' operations."""
    n = draw(st.integers(min_value=1, max_value=30))
    script = []
    live_count = 0
    for _ in range(n):
        if live_count and draw(st.booleans()):
            script.append(("free", draw(st.integers(min_value=0, max_value=live_count - 1))))
            live_count -= 1
        else:
            script.append(("alloc", draw(req_sizes)))
            live_count += 1
    return script


def run_script(script):
    mem = Memory()
    shadow = ShadowMemory()
    alloc = SlabAllocator(mem, shadow)
    live = []
    for op, arg in script:
        if op == "alloc":
            addr = alloc.kmalloc(arg)
            live.append((addr, arg))
        else:
            addr, _ = live.pop(arg)
            alloc.kfree(addr)
    return alloc, shadow, live


class TestAllocatorInvariants:
    @given(alloc_free_scripts())
    @settings(max_examples=60, deadline=None)
    def test_live_objects_never_overlap(self, script):
        _, _, live = run_script(script)
        spans = sorted(
            (addr, addr + SlabAllocator.size_class(size)) for addr, size in live
        )
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    @given(alloc_free_scripts())
    @settings(max_examples=60, deadline=None)
    def test_shadow_consistent_with_liveness(self, script):
        _, shadow, live = run_script(script)
        for addr, size in live:
            assert shadow.first_bad_byte(addr, size) is None
            slot = SlabAllocator.size_class(size)
            if size < slot:
                assert shadow.state_at(addr + size) == ShadowState.REDZONE

    @given(alloc_free_scripts())
    @settings(max_examples=40, deadline=None)
    def test_double_free_always_caught(self, script):
        alloc, _, live = run_script(script)
        if not live:
            return
        addr, _ = live[0]
        alloc.kfree(addr)
        with pytest.raises(AllocatorViolation, match="double-free"):
            alloc.kfree(addr)

    @given(req_sizes)
    @settings(max_examples=40, deadline=None)
    def test_size_class_covers_request(self, size):
        assert SlabAllocator.size_class(size) >= size

    @given(alloc_free_scripts())
    @settings(max_examples=40, deadline=None)
    def test_accounting(self, script):
        alloc, _, live = run_script(script)
        allocs = sum(1 for op, _ in script if op == "alloc")
        frees = sum(1 for op, _ in script if op == "free")
        assert alloc.total_allocs == allocs
        assert alloc.total_frees == frees
        assert alloc.live_bytes == sum(size for _, size in live)
