"""Unit tests for the engine-tier model and its counter telemetry.

Covers :mod:`repro.engine` (normalization, resolution, promotion
thresholds), the machine-level pinning rules (deps trackers force the
reference tier), promotion counter accounting, and the engine /
engine_counters round-trips through :class:`KernelConfig`,
:class:`CampaignSpec`, checkpoint shard payloads and campaign JSON.
"""

import pytest

from repro.campaign_api import CampaignResult, CampaignSpec, run_campaign
from repro.config import KernelConfig
from repro.engine import (
    ENGINE_CHOICES,
    PROMOTE_AFTER,
    EngineTier,
    normalize_engine,
)
from repro.errors import ConfigError
from repro.fuzzer.fuzzer import FuzzStats
from repro.fuzzer.kcov import CoverageMap
from repro.fuzzer.parallel import ShardResult
from repro.fuzzer.triage import CrashDB
from repro.kir import Builder, Program
from repro.machine import Machine
from repro.mem.memory import DATA_BASE
from repro.oemu.profiler import EngineCounters


def _loop_program() -> Program:
    b = Builder("spin", params=["n"])
    i = b.mov(0)
    acc = b.mov(0)
    top = b.label()
    b.bind(top)
    b.store(DATA_BASE, 0, i)
    v = b.load(DATA_BASE, 0)
    b.add(acc, v, dst=acc)
    b.add(i, 1, dst=i)
    b.blt(i, b.reg("n"), top)
    b.ret(acc)
    return Program([b.function()])


class TestNormalization:
    def test_none_defaults_to_auto(self):
        assert normalize_engine(None) == "auto"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError, match="unknown engine"):
            normalize_engine("turbo")

    def test_legacy_flag_folds_into_auto_only(self):
        # decoded_dispatch=False predates tiers and means "reference"...
        assert normalize_engine("auto", decoded_dispatch=False) == "reference"
        assert normalize_engine(None, decoded_dispatch=False) == "reference"
        # ...but an explicit tier choice always wins over the legacy flag.
        assert normalize_engine("codegen", decoded_dispatch=False) == "codegen"
        assert normalize_engine("decoded", decoded_dispatch=False) == "decoded"


class TestResolution:
    def test_pin_reference_overrides_requested(self):
        tier = EngineTier.resolve("codegen", pin_reference=True)
        assert tier.requested == "codegen"
        assert tier.active == "reference"
        assert not tier.uses_decode
        assert tier.promote_threshold is None

    @pytest.mark.parametrize(
        "engine,threshold",
        [("reference", None), ("decoded", None),
         ("auto", PROMOTE_AFTER), ("codegen", 1)],
    )
    def test_promote_thresholds(self, engine, threshold):
        assert EngineTier.resolve(engine).promote_threshold == threshold

    def test_deps_machine_pins_to_reference(self):
        """Dependency tracking only exists on the reference tier; a
        machine with a tracker must pin there whatever was asked for,
        and still compute the same results."""
        outcomes = {}
        for engine in ENGINE_CHOICES:
            m = Machine(_loop_program(), track_deps=True, engine=engine)
            assert m.interp.tier.requested == normalize_engine(engine)
            assert m.interp.tier.active == "reference"
            thread = m.interp.spawn("spin", (50,))
            m.interp.run(thread)
            outcomes[engine] = thread.retval
        assert set(outcomes.values()) == {sum(range(50))}


class TestPromotion:
    def test_auto_promotes_after_threshold(self):
        m = Machine(_loop_program(), engine="auto")
        for run in range(PROMOTE_AFTER + 2):
            thread = m.interp.spawn("spin", (10,), thread_id=run)
            m.interp.run(thread)
            assert thread.retval == sum(range(10))
        assert m.engine_counters.promotions == 1
        assert m.engine_counters.codegen_functions_bound == 1

    def test_decoded_never_promotes(self):
        m = Machine(_loop_program(), engine="decoded")
        for run in range(PROMOTE_AFTER + 2):
            thread = m.interp.spawn("spin", (10,), thread_id=run)
            m.interp.run(thread)
        assert m.engine_counters.promotions == 0
        assert m.engine_counters.codegen_functions_bound == 0

    def test_codegen_promotes_on_first_entry(self):
        m = Machine(_loop_program(), engine="codegen")
        thread = m.interp.spawn("spin", (10,))
        m.interp.run(thread)
        assert m.engine_counters.promotions == 1


class TestCounters:
    def test_diff_is_delta_over_baseline(self):
        c = EngineCounters()
        base = c.snapshot()
        c.boots += 2
        c.promotions += 1
        delta = c.diff(base)
        assert delta["boots"] == 2
        assert delta["promotions"] == 1
        assert delta["resets"] == 0

    def test_merge_sums_fields(self):
        a = EngineCounters()
        a.codegen_cache_hits = 3
        a.merge({"codegen_cache_hits": 4, "resets": 1, "not_a_field": 9})
        assert a.codegen_cache_hits == 7
        assert a.resets == 1


class TestConfigRoundTrip:
    def test_kernel_config_normalizes_engine(self):
        assert KernelConfig().engine == "auto"
        assert KernelConfig(engine="codegen").decoded_dispatch is True
        legacy = KernelConfig(decoded_dispatch=False)
        assert legacy.engine == "reference"
        assert legacy.decoded_dispatch is False
        with pytest.raises(ConfigError, match="unknown engine"):
            KernelConfig(engine="turbo")

    def test_campaign_spec_normalizes_engine(self):
        assert CampaignSpec(iterations=1).engine == "auto"
        legacy = CampaignSpec(iterations=1, decoded_dispatch=False)
        assert legacy.engine == "reference"
        explicit = CampaignSpec(iterations=1, engine="codegen")
        assert explicit.engine == "codegen"
        assert explicit.decoded_dispatch is True

    def test_shard_result_counters_round_trip(self):
        shard = ShardResult(
            shard=0, seed=1, iterations=2, stats=FuzzStats(),
            crashdb=CrashDB(), coverage=CoverageMap(), seconds=0.1,
            engine_counters={"boots": 1, "promotions": 3},
        )
        back = ShardResult.from_json_dict(shard.to_json_dict())
        assert back.engine_counters == {"boots": 1, "promotions": 3}

    def test_shard_result_reads_legacy_payload(self):
        """Pre-tier checkpoints have no engine_counters key."""
        shard = ShardResult(
            shard=0, seed=1, iterations=2, stats=FuzzStats(),
            crashdb=CrashDB(), coverage=CoverageMap(), seconds=0.1,
        )
        payload = shard.to_json_dict()
        del payload["engine_counters"]
        assert ShardResult.from_json_dict(payload).engine_counters == {}

    def test_supervised_campaign_ships_worker_counters(self):
        """jobs>1 routes results through the worker-pool message queue;
        the wire payload must carry each batch's counter deltas."""
        spec = CampaignSpec(iterations=4, seed=3, engine="auto", jobs=2)
        result = run_campaign(spec)
        assert result.engine_counters.get("boots", 0) > 0
        assert result.engine_counters.get("resets", 0) > 0

    def test_campaign_result_json_round_trip(self):
        spec = CampaignSpec(iterations=2, seed=5, engine="codegen")
        result = run_campaign(spec)
        assert result.spec.engine == "codegen"
        assert result.engine_counters.get("promotions", 0) > 0
        back = CampaignResult.from_json(result.to_json())
        assert back.spec.engine == "codegen"
        assert back.engine_counters == result.engine_counters
