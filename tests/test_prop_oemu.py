"""Property tests on OEMU's core soundness invariants.

These are the claims the whole tool rests on:

1. **Transparency**: with no controls installed, the instrumented kernel
   computes exactly what the plain kernel computes.
2. **Value provenance**: a versioned load only ever returns a value that
   the location actually held at some point in its history.
3. **Flush completeness**: after a full barrier every delayed store is
   in memory, in program order.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.kir import Builder, Program
from repro.kir.insn import Annot, Load, Store
from repro.machine import Machine
from repro.mem.memory import DATA_BASE
from repro.oemu.instrument import instrument_program

NSLOTS = 4
annots_store = st.sampled_from([Annot.PLAIN, Annot.ONCE, Annot.RELEASE])
annots_load = st.sampled_from([Annot.PLAIN, Annot.ONCE, Annot.ACQUIRE])


@st.composite
def straightline_programs(draw):
    """A random sequence of stores/loads/barriers over NSLOTS slots."""
    n = draw(st.integers(min_value=1, max_value=12))
    ops = []
    for _ in range(n):
        kind = draw(st.sampled_from(["store", "load", "wmb", "rmb", "mb"]))
        slot = draw(st.integers(min_value=0, max_value=NSLOTS - 1))
        value = draw(st.integers(min_value=0, max_value=255))
        annot = draw(annots_store if kind == "store" else annots_load)
        ops.append((kind, slot, value, annot))
    return ops


def build(ops, name="f"):
    b = Builder(name)
    acc = b.mov(0)
    for kind, slot, value, annot in ops:
        addr = DATA_BASE + 8 * slot
        if kind == "store":
            b.store(addr, 0, value, annot=annot)
        elif kind == "load":
            v = b.load(addr, 0, annot=annot)
            acc = b.add(acc, v)
            acc = b.mul(acc, 3)
        elif kind == "wmb":
            b.wmb()
        elif kind == "rmb":
            b.rmb()
        else:
            b.mb()
    b.ret(acc)
    return Program([b.function()])


def final_state(machine):
    return bytes(machine.memory.read_bytes(DATA_BASE, 8 * NSLOTS))


class TestTransparency:
    @given(straightline_programs())
    @settings(max_examples=60, deadline=None)
    def test_instrumented_equals_plain_without_controls(self, ops):
        prog = build(ops)
        plain = Machine(prog, with_oemu=False)
        plain_ret = plain.run("f")

        iprog, _ = instrument_program(prog)
        inst = Machine(iprog)
        t = inst.spawn("f")
        inst_ret = inst.interp.run(t)
        inst.oemu.flush(t.thread_id)
        assert inst_ret == plain_ret
        assert final_state(inst) == final_state(plain)

    @given(straightline_programs())
    @settings(max_examples=40, deadline=None)
    def test_single_thread_semantics_unchanged_by_delays(self, ops):
        """Even with every store delayed, a single thread computes the
        same result (store forwarding) and the same final memory (flush)."""
        prog = build(ops)
        plain = Machine(prog, with_oemu=False)
        plain_ret = plain.run("f")

        iprog, _ = instrument_program(prog)
        inst = Machine(iprog)
        t = inst.spawn("f")
        for insn in iprog.function("f").insns:
            if isinstance(insn, Store):
                inst.oemu.delay_store_at(t.thread_id, insn.addr)
        inst_ret = inst.interp.run(t)
        inst.oemu.on_syscall_exit(t.thread_id)
        assert inst_ret == plain_ret
        assert final_state(inst) == final_state(plain)


@st.composite
def writer_ops(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    return [
        (
            draw(st.integers(min_value=0, max_value=NSLOTS - 1)),
            draw(st.integers(min_value=1, max_value=255)),
        )
        for _ in range(n)
    ]


class TestValueProvenance:
    @given(writer_ops(), st.integers(min_value=0, max_value=NSLOTS - 1))
    @settings(max_examples=60, deadline=None)
    def test_versioned_load_returns_some_historical_value(self, writes, slot):
        """A reader with every load versioned still only sees values the
        slot actually held (0 or one of the written values)."""
        wb = Builder("writer")
        history_values = {slot_i: {0} for slot_i in range(NSLOTS)}
        for s, v in writes:
            wb.store(DATA_BASE + 8 * s, 0, v)
            history_values[s].add(v)
        wb.ret()
        rb = Builder("reader")
        v = rb.load(DATA_BASE + 8 * slot, 0)
        rb.ret(v)
        prog, _ = instrument_program(Program([wb.function(), rb.function()]))
        m = Machine(prog)
        reader = m.spawn("reader", cpu=0)
        load = next(i for i in prog.function("reader").insns if isinstance(i, Load))
        m.oemu.read_old_value_at(reader.thread_id, load.addr)
        m.run("writer", cpu=1)
        got = m.interp.run(reader)
        assert got in history_values[slot]

    @given(writer_ops())
    @settings(max_examples=40, deadline=None)
    def test_flush_applies_stores_in_program_order(self, writes):
        b = Builder("w")
        for s, v in writes:
            b.store(DATA_BASE + 8 * s, 0, v)
        b.ret()
        prog, _ = instrument_program(Program([b.function()]))
        m = Machine(prog)
        t = m.spawn("w")
        for insn in prog.function("w").insns:
            if isinstance(insn, Store):
                m.oemu.delay_store_at(t.thread_id, insn.addr)
        m.interp.run(t)
        m.oemu.flush(t.thread_id)
        expected = [0] * NSLOTS
        for s, v in writes:
            expected[s] = v
        for s in range(NSLOTS):
            assert m.memory.load(DATA_BASE + 8 * s, 8) == expected[s]
