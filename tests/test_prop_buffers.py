"""Property tests: the virtual store buffer and store history agree with
brute-force reference semantics (paper §3.1/§3.2 invariants)."""

from hypothesis import given, settings, strategies as st

from repro.mem.store_buffer import VirtualStoreBuffer
from repro.mem.store_history import StoreHistory

BASE = 0x1000
SPAN = 64

addrs = st.integers(min_value=BASE, max_value=BASE + SPAN - 8)
sizes = st.sampled_from([1, 2, 4, 8])
values = st.binary(min_size=8, max_size=8)


@st.composite
def pending_stores(draw):
    n = draw(st.integers(min_value=0, max_value=12))
    return [(draw(addrs), draw(sizes), draw(values)) for _ in range(n)]


class TestStoreBufferForwarding:
    @given(pending_stores())
    @settings(max_examples=80, deadline=None)
    def test_forwarding_equals_apply_in_order(self, stores):
        """Reading through the buffer == applying pending stores to the
        base bytes in FIFO order."""
        buf = VirtualStoreBuffer()
        base = bytes(range(SPAN % 256)) + bytes(SPAN - (SPAN % 256))
        base = (bytes(range(256)) * 2)[:SPAN]
        ref = bytearray(base)
        for i, (addr, size, value) in enumerate(stores):
            buf.delay(i, addr, size, value[:size])
            ref[addr - BASE : addr - BASE + size] = value[:size]
        got = buf.forward_overlay(BASE, SPAN, base)
        assert got == bytes(ref)

    @given(pending_stores())
    @settings(max_examples=40, deadline=None)
    def test_flush_commits_in_fifo_order(self, stores):
        buf = VirtualStoreBuffer()
        for i, (addr, size, value) in enumerate(stores):
            buf.delay(i, addr, size, value[:size])
        order = []
        buf.flush(lambda e: order.append(e.seq))
        assert order == sorted(order)
        assert len(buf) == 0

    @given(pending_stores())
    @settings(max_examples=40, deadline=None)
    def test_overlaps_is_accurate(self, stores):
        buf = VirtualStoreBuffer()
        for i, (addr, size, value) in enumerate(stores):
            buf.delay(i, addr, size, value[:size])
        for probe in range(BASE, BASE + SPAN, 8):
            expected = any(
                a < probe + 8 and probe < a + s for (a, s, _) in stores
            )
            assert buf.overlaps(probe, 8) == expected


@st.composite
def committed_stores(draw):
    n = draw(st.integers(min_value=0, max_value=12))
    out = []
    for ts in range(1, n + 1):
        addr = draw(addrs)
        size = draw(sizes)
        new = draw(values)[:size]
        thread = draw(st.integers(min_value=1, max_value=3))
        out.append((ts, addr, size, new, thread))
    return out


def replay(commits, upto_ts):
    """Reference: memory contents after applying commits with ts <= upto."""
    mem = bytearray(SPAN)
    for ts, addr, size, new, _ in commits:
        if ts <= upto_ts:
            mem[addr - BASE : addr - BASE + size] = new
    return mem


class TestStoreHistoryReconstruction:
    @given(committed_stores(), st.integers(min_value=0, max_value=13))
    @settings(max_examples=80, deadline=None)
    def test_read_old_equals_replay_at_window_start(self, commits, window):
        """A versioned read of any byte returns exactly the value memory
        held at the window start (the §3.2 semantics)."""
        hist = StoreHistory()
        mem = bytearray(SPAN)
        for ts, addr, size, new, thread in commits:
            old = bytes(mem[addr - BASE : addr - BASE + size])
            hist.record(ts, addr, size, old, new, thread, inst_addr=ts)
            mem[addr - BASE : addr - BASE + size] = new
        expected = replay(commits, window)
        got, _ = hist.read_old(
            BASE, SPAN, window, current=lambda a: mem[a - BASE]
        )
        assert got == bytes(expected)

    @given(committed_stores())
    @settings(max_examples=60, deadline=None)
    def test_own_thread_coherence_bound(self, commits):
        """With the thread bound, no byte the thread itself wrote inside
        the window can read back its pre-write value (po-loc)."""
        hist = StoreHistory()
        mem = bytearray(SPAN)
        for ts, addr, size, new, thread in commits:
            old = bytes(mem[addr - BASE : addr - BASE + size])
            hist.record(ts, addr, size, old, new, thread, inst_addr=ts)
            mem[addr - BASE : addr - BASE + size] = new
        for reader in (1, 2, 3):
            got, _ = hist.read_old(BASE, SPAN, 0, lambda a: mem[a - BASE], thread=reader)
            # Every byte the reader wrote must reflect a state at or
            # after its own last write to that byte.
            own_last = {}
            for ts, addr, size, new, thread in commits:
                if thread == reader:
                    for k in range(size):
                        own_last[addr + k] = ts
            for byte_addr, ts_own in own_last.items():
                expected_floor = replay(commits, ts_own)[byte_addr - BASE]
                # got must be value at some time >= ts_own; check that it
                # equals replay at the earliest legal point OR any later
                # committed state of that byte.
                legal = {
                    replay(commits, t)[byte_addr - BASE]
                    for t in range(ts_own, len(commits) + 1)
                }
                assert got[byte_addr - BASE] in legal
