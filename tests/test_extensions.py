"""Tests for the §4.5-discussion extensions: hardware concurrency (RDMA)
and interrupt injection."""

import pytest

from repro.bench.campaign import reproduce_bug
from repro.config import KernelConfig
from repro.kernel import Kernel, KernelImage, bugs
from repro.kernel.subsystems.rdma import CQE, CQE_MAGIC, DEVICE_THREAD
from repro.kir.insn import Store
from repro.sched import BarrierTestExecutor


@pytest.fixture(scope="module")
def image():
    return KernelImage(KernelConfig())


class TestRdmaHardwareConcurrency:
    def test_normal_poll_round_trip(self, image):
        kernel = Kernel(image)
        kernel.run_syscall("rdma_kick")
        assert kernel.run_syscall("rdma_poll_cq") == CQE_MAGIC

    def test_poll_on_empty_cq(self, image):
        kernel = Kernel(image)
        assert kernel.run_syscall("rdma_poll_cq") == 0

    def test_device_writes_recorded_in_history(self, image):
        """The DMA agent's stores commit under the device identity and
        are visible to versioned loads (the §4.5 mechanism)."""
        kernel = Kernel(image)
        kernel.run_syscall("rdma_kick")
        cq = kernel.glob("rdma_cq")
        recs = [r for r in kernel.history.records if r.thread == DEVICE_THREAD]
        assert {r.addr for r in recs} == {cq + CQE.data, cq + CQE.valid}

    def test_driver_load_load_reorder_vs_dma_triggers(self):
        result = reproduce_bug(bugs.get("ext_rdma_cq"))
        assert result.reproduced
        assert result.title == "kernel BUG at rdma_poll_cq"
        assert result.trigger_type == "L-L"

    def test_irdma_style_read_barrier_fixes_it(self):
        result = reproduce_bug(
            bugs.get("ext_rdma_cq"),
            config=KernelConfig(patched=frozenset({"ext_rdma_cq"})),
        )
        assert not result.reproduced

    def test_cpu_delay_controls_cannot_touch_device_stores(self, image):
        """delay_store_at on the DMA pseudo-instructions is inert: the
        device's stores always commit on the bus."""
        from repro.kernel.subsystems.rdma import DMA_DATA_INSN, DMA_VALID_INSN

        kernel = Kernel(image)
        thread = kernel.spawn_syscall("rdma_kick")
        kernel.oemu.delay_store_at(thread.thread_id, DMA_DATA_INSN)
        kernel.oemu.delay_store_at(thread.thread_id, DMA_VALID_INSN)
        kernel.interp.run(thread)
        cq = kernel.glob("rdma_cq")
        assert kernel.peek(cq + CQE.valid) == 1
        assert kernel.peek(cq + CQE.data) == CQE_MAGIC


class TestInterruptInjection:
    def _figure1_setup(self, image):
        kernel = Kernel(image)
        kernel.run_syscall("watch_queue_create")
        stores = [
            i
            for i in kernel.program.function("post_one_notification").insns
            if isinstance(i, Store)
        ]
        victim = kernel.spawn_syscall("watch_queue_post", (9,), cpu=0)
        observer = kernel.spawn_syscall("pipe_read", (), cpu=1)
        executor = BarrierTestExecutor(kernel)
        return executor, victim, observer, stores

    def test_interrupt_flushes_and_suppresses_the_bug(self, image):
        """§3.1: an interrupt commits delayed stores, so the Figure 1
        reordering cannot be observed across it."""
        executor, victim, observer, stores = self._figure1_setup(image)
        outcome = executor.run_store_test(
            victim, observer, stores[2].addr, [s.addr for s in stores[:2]],
            inject_interrupt=True,
        )
        assert not outcome.crashed

    def test_without_interrupt_the_bug_manifests(self, image):
        executor, victim, observer, stores = self._figure1_setup(image)
        outcome = executor.run_store_test(
            victim, observer, stores[2].addr, [s.addr for s in stores[:2]],
        )
        assert outcome.crashed
