"""Tests for the campaign supervisor (fault tolerance, checkpoint/resume).

The determinism contract under test: a campaign whose workers hang, die
or raise mid-run must — after supervised kill/restart with the same
re-derived shard seeds — produce a :class:`CampaignResult` *equal* to an
unfaulted run of the same spec (telemetry fields are excluded from
equality precisely so this holds).
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.campaign_api import (
    CampaignSpec,
    QuarantinedInput,
    resume_campaign,
    run_campaign,
)
from repro.errors import ConfigError
from repro.fuzzer.parallel import merge_shards, run_shard
from repro.fuzzer.supervisor import (
    CHECKPOINT_VERSION,
    FAULT_ENV,
    MANIFEST_NAME,
    FaultPlan,
    faults_from_env,
    load_checkpoint,
    run_supervised,
    run_supervised_shards,
    write_checkpoint,
)
from repro.trace import TraceRecorder


def small_spec(**overrides):
    base = dict(iterations=8, jobs=2, use_seeds=True, shard_timeout=2.0)
    base.update(overrides)
    return CampaignSpec(**base)


@pytest.fixture(scope="module")
def clean_result():
    """One unfaulted supervised run every fault test compares against."""
    return run_supervised(small_spec())


class TestCleanRuns:
    def test_supervised_matches_inprocess_merge(self, clean_result):
        spec = small_spec()
        shards = [run_shard(spec, k) for k in range(spec.jobs)]
        expected = merge_shards(spec, shards, seconds=0.0)
        assert clean_result == expected

    def test_run_campaign_routes_robustness_knobs_through_supervisor(self):
        spec = CampaignSpec(iterations=4, jobs=1, use_seeds=True, shard_timeout=2.0)
        assert spec.supervised
        result = run_campaign(spec)
        assert result.stats.tests_run > 0
        assert result.failed_shards == ()

    def test_no_telemetry_on_clean_run(self, clean_result):
        assert clean_result.retries == ()
        assert clean_result.quarantined == ()
        assert clean_result.failed_shards == ()
        assert not clean_result.interrupted


class TestFaultRecovery:
    def test_death_recovers_deterministically(self, clean_result):
        result = run_supervised(
            small_spec(), faults=(FaultPlan(shard=1, iteration=1, kind="die"),)
        )
        assert result == clean_result
        assert [r.shard for r in result.retries] == [1]
        assert "died" in result.retries[0].reason

    def test_hang_recovers_deterministically(self, clean_result):
        result = run_supervised(
            small_spec(), faults=(FaultPlan(shard=1, iteration=2, kind="hang"),)
        )
        assert result == clean_result
        assert result.retries[0].reason == "hung"
        assert result.retries[0].iteration == 2

    def test_worker_exception_recovers_deterministically(self, clean_result):
        result = run_supervised(
            small_spec(), faults=(FaultPlan(shard=0, iteration=2, kind="error"),)
        )
        assert result == clean_result
        assert "RuntimeError" in result.retries[0].reason

    def test_exhausted_retries_merge_survivors(self, clean_result):
        """The old Pool.map behaviour — one bad worker discarding every
        other shard's finished work — must not come back."""
        result = run_supervised(
            small_spec(max_retries=0),
            faults=(FaultPlan(shard=1, iteration=0, kind="die", persistent=True),),
        )
        assert len(result.failed_shards) == 1
        assert result.failed_shards[0].shard == 1
        # Shard 0's work survived the other shard's permanent failure.
        survivor = run_shard(small_spec(), 0)
        assert result.stats.tests_run == survivor.stats.tests_run
        assert {s.shard for s in result.shards} == {0}

    def test_persistent_death_quarantines_input(self):
        result = run_supervised(
            small_spec(max_retries=4),
            faults=(FaultPlan(shard=1, iteration=1, kind="die", persistent=True),),
        )
        assert result.quarantined == (
            QuarantinedInput(shard=1, iteration=1, deaths=2),
        )
        assert result.failed_shards == ()  # quarantine unblocked the shard
        assert len(result.retries) == 2
        # The quarantined iteration was skipped, so shard 1 ran one
        # fewer input than its clean twin.
        clean1 = run_shard(small_spec(), 1)
        shard1 = [s for s in result.shards if s.shard == 1][0]
        assert shard1.tests_run < clean1.stats.tests_run


class TestCheckpointResume:
    def test_kill_at_checkpoint_then_resume_equals_clean(self, tmp_path, clean_result):
        d = str(tmp_path / "ckpt")
        spec = small_spec(
            checkpoint_dir=d, checkpoint_every=2, max_retries=0
        )
        first = run_supervised(
            spec, faults=(FaultPlan(shard=1, iteration=3, kind="die"),)
        )
        assert [f.shard for f in first.failed_shards] == [1]
        assert os.path.exists(os.path.join(d, MANIFEST_NAME))
        assert os.path.exists(os.path.join(d, "shard-000.json"))

        resumed = resume_campaign(d)
        # Same crash set, stats and per-shard outcomes as a never-faulted
        # campaign (spec differs by checkpoint_dir, so compare the parts).
        assert resumed.stats == clean_result.stats
        assert resumed.crashes == clean_result.crashes
        assert resumed.found_bug_ids == clean_result.found_bug_ids
        assert resumed.shards == clean_result.shards
        assert resumed.failed_shards == ()

    def test_completed_shards_load_without_rerun(self, tmp_path):
        d = str(tmp_path / "ckpt")
        spec = small_spec(checkpoint_dir=d)
        run_supervised(spec)
        state = load_checkpoint(d)
        assert sorted(state.completed) == [0, 1]
        resumed = run_supervised_shards(state.spec, resume_state=state)
        assert [s.shard for s in resumed.shards] == [0, 1]

    def test_manifest_schema(self, tmp_path):
        d = str(tmp_path / "ckpt")
        run_supervised(small_spec(checkpoint_dir=d))
        with open(os.path.join(d, MANIFEST_NAME)) as fh:
            manifest = json.load(fh)
        assert manifest["version"] == CHECKPOINT_VERSION
        assert manifest["kind"] == "ozz-campaign-checkpoint"
        assert manifest["completed"] == [0, 1]
        assert manifest["interrupted"] is False

    def test_load_rejects_non_checkpoint(self, tmp_path):
        with pytest.raises(ConfigError):
            load_checkpoint(str(tmp_path))
        (tmp_path / MANIFEST_NAME).write_text('{"kind": "something-else"}')
        with pytest.raises(ConfigError):
            load_checkpoint(str(tmp_path))

    def test_resume_preserves_quarantine(self, tmp_path):
        d = str(tmp_path / "ckpt")
        spec = small_spec(checkpoint_dir=d, max_retries=4)
        first = run_supervised(
            spec,
            faults=(FaultPlan(shard=1, iteration=1, kind="die", persistent=True),),
        )
        assert first.quarantined
        state = load_checkpoint(d)
        assert state.quarantined == first.quarantined


class TestInterruption:
    def test_stop_when_merges_partials(self):
        spec = small_spec(iterations=16, checkpoint_every=2)

        def shard0_done_shard1_partial(states):
            return states[0].result is not None and states[1].partial is not None

        result = run_supervised(
            spec,
            faults=(FaultPlan(shard=1, iteration=5, kind="hang"),),
            stop_when=shard0_done_shard1_partial,
        )
        assert result.interrupted
        by_shard = {s.shard: s for s in result.shards}
        assert by_shard[0].iterations == 8  # completed its slice
        assert 0 < by_shard[1].iterations < 8  # merged from a partial

    def test_sigint_checkpoints_and_merges_partial(self, tmp_path):
        """A real SIGINT mid-campaign exits cleanly with a resumable
        checkpoint (run in a subprocess so the signal stays contained)."""
        d = str(tmp_path / "ckpt")
        script = textwrap.dedent(
            """
            import sys
            from repro.campaign_api import CampaignSpec
            from repro.fuzzer.supervisor import FaultPlan, run_supervised

            spec = CampaignSpec(
                iterations=400, jobs=2, use_seeds=True,
                checkpoint_dir=sys.argv[1], checkpoint_every=2,
            )
            result = run_supervised(
                spec, faults=(FaultPlan(shard=1, iteration=6, kind="hang"),)
            )
            print("INTERRUPTED", result.interrupted)
            """
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [os.path.abspath("src"), env.get("PYTHONPATH")])
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", script, d],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        manifest = os.path.join(d, MANIFEST_NAME)
        deadline = time.monotonic() + 60
        while not os.path.exists(manifest):
            assert time.monotonic() < deadline, "no checkpoint before timeout"
            assert proc.poll() is None, proc.communicate()[1]
            time.sleep(0.05)
        proc.send_signal(signal.SIGINT)
        out, err = proc.communicate(timeout=60)
        assert proc.returncode == 0, err
        assert "INTERRUPTED True" in out
        state = load_checkpoint(d)
        assert state.interrupted


class TestFaultPlumbing:
    def test_faults_from_env_parsing(self):
        plans = faults_from_env("die:1:3,hang:0:2:persistent")
        assert plans == (
            FaultPlan(shard=1, iteration=3, kind="die"),
            FaultPlan(shard=0, iteration=2, kind="hang", persistent=True),
        )
        assert faults_from_env("") == ()

    def test_faults_from_env_rejects_garbage(self):
        with pytest.raises(ConfigError):
            faults_from_env("die:1")
        with pytest.raises(ConfigError):
            faults_from_env("explode:1:3")

    def test_env_var_reaches_supervisor(self, monkeypatch, clean_result):
        monkeypatch.setenv(FAULT_ENV, "die:1:1")
        result = run_supervised(small_spec())
        assert result == clean_result
        assert [r.shard for r in result.retries] == [1]


class TestTelemetryEvents:
    def test_supervisor_emits_trace_events(self):
        sink = TraceRecorder(capacity=4096)
        run_supervised(
            small_spec(),
            faults=(FaultPlan(shard=1, iteration=1, kind="die"),),
            sink=sink,
        )
        kinds = [e.kind for e in sink.events()]
        assert kinds.count("shard-start") == 3  # 2 launches + 1 retry
        assert "shard-retry" in kinds
        assert "shard-heartbeat" in kinds

    def test_checkpoint_event(self, tmp_path):
        sink = TraceRecorder(capacity=4096)
        run_supervised(small_spec(checkpoint_dir=str(tmp_path)), sink=sink)
        kinds = [e.kind for e in sink.events()]
        assert "checkpoint" in kinds


class TestSpecValidation:
    def test_bad_robustness_knobs_rejected(self):
        with pytest.raises(ConfigError):
            CampaignSpec(iterations=4, shard_timeout=0.0)
        with pytest.raises(ConfigError):
            CampaignSpec(iterations=4, max_retries=-1)
        with pytest.raises(ConfigError):
            CampaignSpec(iterations=4, checkpoint_every=0)

    def test_spec_json_roundtrip_includes_robustness_knobs(self):
        spec = small_spec(checkpoint_dir="/tmp/x", checkpoint_every=5, max_retries=7)
        result = run_supervised(spec)
        again = type(result).from_json(result.to_json())
        assert again.spec == spec

    def test_write_checkpoint_is_atomic(self, tmp_path):
        # No .tmp litter after a write (atomic rename completed).
        spec = small_spec(checkpoint_dir=str(tmp_path))
        run_supervised(spec)
        assert not [p for p in os.listdir(str(tmp_path)) if p.endswith(".tmp")]
