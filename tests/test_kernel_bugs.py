"""The seeded-bug matrix: every registry bug triggers on the buggy
kernel and is silent on the patched kernel.

This is the repository's ground-truth integrity check: if a seeded bug
stops reproducing (or a patch stops holding), every evaluation table
built on top of it is wrong.
"""

import pytest

from repro.bench.campaign import reproduce_bug, sti_for_bug
from repro.config import KernelConfig
from repro.kernel import bugs

REPRODUCIBLE = [b for b in bugs.all_bugs() if b.reproducible]
ALL = bugs.all_bugs()


class TestRegistry:
    def test_tables_have_paper_row_counts(self):
        assert len(bugs.table3_bugs()) == 11
        assert len(bugs.table4_bugs()) == 9

    def test_titles_unique(self):
        titles = [b.title for b in ALL]
        assert len(titles) == len(set(titles))

    def test_reorder_types_match_paper_distribution(self):
        """Table 4: 5 store-store (+1 irreproducible), 3 load-load."""
        t4 = bugs.table4_bugs()
        assert sum(1 for b in t4 if b.reorder_type == "S-S") == 6
        assert sum(1 for b in t4 if b.reorder_type == "L-L") == 3

    def test_exactly_one_irreproducible(self):
        assert [b.bug_id for b in ALL if not b.reproducible] == ["t4_sbitmap"]

    def test_exactly_one_non_crash_symptom(self):
        assert [b.bug_id for b in ALL if not b.crash_symptom] == ["t4_tls_err"]


@pytest.mark.parametrize("spec", REPRODUCIBLE, ids=lambda s: s.bug_id)
class TestBugMatrix:
    def test_triggers_on_buggy_kernel(self, spec):
        result = reproduce_bug(spec)
        assert result.reproduced, f"{spec.bug_id} did not reproduce"
        assert result.title == spec.title
        assert result.n_tests <= 10

    def test_patch_holds(self, spec):
        config = KernelConfig(patched=frozenset({spec.bug_id}))
        result = reproduce_bug(spec, config=config)
        assert not result.reproduced, f"patched {spec.bug_id} still crashed"

    def test_trigger_type_matches_registry(self, spec):
        result = reproduce_bug(spec)
        assert result.trigger_type == spec.reorder_type


class TestSbitmapNegativeResult:
    """Paper §6.2's one failure, reproduced as a failure."""

    def test_not_reproducible_with_pinned_threads(self):
        spec = bugs.get("t4_sbitmap")
        result = reproduce_bug(spec)
        assert not result.reproduced

    def test_manual_percpu_modification_recovers_it(self):
        spec = bugs.get("t4_sbitmap")
        result = reproduce_bug(spec, config=KernelConfig(sbitmap_manual_percpu=True))
        assert result.reproduced
        assert result.title == spec.title


class TestCrossPatchIsolation:
    """Patching one bug must not mask another (fixes are independent)."""

    @pytest.mark.parametrize(
        "patched_id,still_buggy_id",
        [
            ("t3_xsk_poll", "t3_xsk_xmit"),
            ("t3_tls_setsockopt", "t3_tls_getsockopt"),
            ("t3_smc_connect", "t3_smc_fput"),
            ("t4_watch_queue", "t3_wq_find_first_bit"),
        ],
    )
    def test_sibling_bug_survives_patch(self, patched_id, still_buggy_id):
        config = KernelConfig(patched=frozenset({patched_id}))
        result = reproduce_bug(bugs.get(still_buggy_id), config=config)
        assert result.reproduced


class TestStiConstruction:
    def test_load_bugs_profile_observer_first(self):
        spec = bugs.get("t4_fget_light")
        sti, pair = sti_for_bug(spec)
        names = [c.name for c in sti.calls]
        assert names.index(spec.observer_syscall) < names.index(spec.victim_syscall)

    def test_store_bugs_profile_victim_first(self):
        spec = bugs.get("t4_watch_queue")
        sti, pair = sti_for_bug(spec)
        names = [c.name for c in sti.calls]
        assert names.index(spec.victim_syscall) < names.index(spec.observer_syscall)

    def test_resource_refs_resolve(self):
        from repro.fuzzer.sti import ResourceRef

        spec = bugs.get("t3_tls_setsockopt")
        sti, _ = sti_for_bug(spec)
        assert any(
            isinstance(a, ResourceRef) for c in sti.calls for a in c.args
        )
