"""OEMU runtime tests: delayed stores (Figure 3), versioned loads
(Figure 4), forwarding, windows, and the Table 2 interfaces."""

import pytest

from repro.kir import Annot, Builder, Program
from repro.kir.insn import Load, Store
from repro.machine import Machine
from repro.mem.memory import DATA_BASE
from repro.oemu.instrument import instrument_program

X = DATA_BASE
Y = DATA_BASE + 8
Z = DATA_BASE + 16
W = DATA_BASE + 24


def make_machine(*funcs, **kw):
    prog, _ = instrument_program(Program(list(funcs)))
    return Machine(prog, **kw)


def writer_xy():
    """Figure 3's writer: I1: X=1; I2: Y=2; smp_wmb()."""
    b = Builder("writer")
    b.store(X, 0, 1)   # I1
    b.store(Y, 0, 2)   # I2
    b.wmb()
    b.ret()
    return b.function()


def store_insn_addrs(machine, func_name):
    return [
        i.addr
        for i in machine.program.function(func_name).insns
        if isinstance(i, Store)
    ]


def load_insn_addrs(machine, func_name):
    return [
        i.addr
        for i in machine.program.function(func_name).insns
        if isinstance(i, Load)
    ]


class TestFigure3DelayedStore:
    def test_delayed_store_invisible_until_barrier(self):
        """Reproduces Figure 3 step by step."""
        m = make_machine(writer_xy())
        i1, i2 = store_insn_addrs(m, "writer")
        thread = m.spawn("writer")
        m.oemu.delay_store_at(thread.thread_id, i1)  # (1) delay_store_at(I1)

        m.interp.step(thread)  # I1 executes: value held in the buffer (3)
        assert m.memory.load(X, 8) == 0
        assert len(m.oemu.pending_stores(thread.thread_id)) == 1

        m.interp.step(thread)  # I2 executes: commits immediately (4)
        assert m.memory.load(Y, 8) == 2
        assert m.memory.load(X, 8) == 0  # reordered world visible

        m.interp.step(thread)  # smp_wmb flushes (5)
        assert m.memory.load(X, 8) == 1
        assert len(m.oemu.pending_stores(thread.thread_id)) == 0

    def test_default_is_in_order(self):
        """Without delay_store_at the buffer commits immediately."""
        m = make_machine(writer_xy())
        thread = m.spawn("writer")
        m.interp.step(thread)
        assert m.memory.load(X, 8) == 1

    def test_store_forwarding_same_thread(self):
        """A core always sees its own delayed stores (§3.1)."""
        b = Builder("selfread")
        b.store(X, 0, 7)
        v = b.load(X, 0)
        b.ret(v)
        m = make_machine(b.function())
        thread = m.spawn("selfread")
        st = store_insn_addrs(m, "selfread")[0]
        m.oemu.delay_store_at(thread.thread_id, st)
        assert m.interp.run(thread) == 7   # forwarded from the buffer
        assert m.memory.load(X, 8) == 0    # ... while memory is untouched

    def test_release_store_flushes_and_commits(self):
        b = Builder("rel")
        b.store(X, 0, 1)
        b.store_release(Y, 0, 2)
        b.ret()
        m = make_machine(b.function())
        thread = m.spawn("rel")
        st = store_insn_addrs(m, "rel")[0]
        m.oemu.delay_store_at(thread.thread_id, st)
        m.interp.run(thread)
        assert m.memory.load(X, 8) == 1
        assert m.memory.load(Y, 8) == 2

    def test_release_store_itself_never_delayed(self):
        b = Builder("rel2")
        b.store_release(X, 0, 5)
        b.ret()
        m = make_machine(b.function())
        thread = m.spawn("rel2")
        st = store_insn_addrs(m, "rel2")[0]
        m.oemu.delay_store_at(thread.thread_id, st)
        m.interp.run(thread)
        assert m.memory.load(X, 8) == 5

    def test_write_once_is_delayable(self):
        """WRITE_ONCE is relaxed (Table 1) — the Figure 7 trap."""
        b = Builder("wo")
        b.write_once(X, 0, 9)
        b.ret()
        m = make_machine(b.function())
        thread = m.spawn("wo")
        st = store_insn_addrs(m, "wo")[0]
        m.oemu.delay_store_at(thread.thread_id, st)
        m.interp.run(thread)
        assert m.memory.load(X, 8) == 0  # still parked
        m.oemu.flush(thread.thread_id)
        assert m.memory.load(X, 8) == 9

    def test_full_barrier_flushes(self):
        b = Builder("mbf")
        b.store(X, 0, 1)
        b.mb()
        b.ret()
        m = make_machine(b.function())
        thread = m.spawn("mbf")
        m.oemu.delay_store_at(thread.thread_id, store_insn_addrs(m, "mbf")[0])
        m.interp.run(thread)
        assert m.memory.load(X, 8) == 1

    def test_interrupt_flushes(self):
        m = make_machine(writer_xy())
        thread = m.spawn("writer")
        i1, _ = store_insn_addrs(m, "writer")
        m.oemu.delay_store_at(thread.thread_id, i1)
        m.interp.step(thread)
        assert m.memory.load(X, 8) == 0
        m.oemu.on_interrupt(thread.thread_id)
        assert m.memory.load(X, 8) == 1


def reader_wz():
    """Figure 4's reader: smp_rmb(); I1: r1=W; I2: r2=Z; returns r1*1000+r2."""
    b = Builder("reader")
    b.rmb()
    r1 = b.load(W, 0)  # I1
    r2 = b.load(Z, 0)  # I2
    scaled = b.mul(r1, 1000)
    total = b.add(scaled, r2)
    b.ret(total)
    return b.function()


def writer_zw():
    """Figure 4's other core: Z=1 at t4; W=2 at t5."""
    b = Builder("writer2")
    b.store(Z, 0, 1)
    b.store(W, 0, 2)
    b.ret()
    return b.function()


class TestFigure4VersionedLoad:
    def test_versioned_load_reads_window_start_value(self):
        """Reproduces Figure 4: r1 reads updated W, r2 reads old Z."""
        m = make_machine(reader_wz(), writer_zw())
        reader = m.spawn("reader", cpu=0)
        i2 = load_insn_addrs(m, "reader")[1]
        m.oemu.read_old_value_at(reader.thread_id, i2)  # (1)

        m.interp.step(reader)  # smp_rmb at t3 (3): window starts here
        m.run("writer2", cpu=1)  # (4)(5): Z=1, W=2 committed to memory
        result = m.interp.run(reader)  # (6) reads W=2, (7) reads old Z=0
        assert result == 2 * 1000 + 0

    def test_unversioned_load_reads_memory(self):
        m = make_machine(reader_wz(), writer_zw())
        reader = m.spawn("reader", cpu=0)
        m.interp.step(reader)
        m.run("writer2", cpu=1)
        assert m.interp.run(reader) == 2 * 1000 + 1

    def test_window_excludes_pre_barrier_writes(self):
        """Values committed before the rmb are not 'old' candidates."""
        m = make_machine(reader_wz(), writer_zw())
        m.run("writer2", cpu=1)  # writes happen BEFORE the reader's rmb
        reader = m.spawn("reader", cpu=0)
        i2 = load_insn_addrs(m, "reader")[1]
        m.oemu.read_old_value_at(reader.thread_id, i2)
        assert m.interp.run(reader) == 2 * 1000 + 1  # must see Z=1

    def test_store_buffer_beats_history(self):
        """§3.2: the local store buffer is searched before the history."""
        b = Builder("own")
        b.rmb()
        b.store(Z, 0, 42)
        v = b.load(Z, 0)
        b.ret(v)
        m = make_machine(b.function(), writer_zw())
        t = m.spawn("own", cpu=0)
        loads = load_insn_addrs(m, "own")
        stores = store_insn_addrs(m, "own")
        m.interp.step(t)  # rmb
        m.run("writer2", cpu=1)  # Z=1 in history window
        m.oemu.delay_store_at(t.thread_id, stores[0])
        m.oemu.read_old_value_at(t.thread_id, loads[0])
        assert m.interp.run(t) == 42  # own in-flight store wins

    def test_read_once_bounds_window(self):
        """A READ_ONCE load resets t_rmb: later versioned loads cannot
        read values older than the READ_ONCE's execution (Case 6)."""
        b = Builder("ro")
        b.rmb()
        b.read_once(W, 0)
        v = b.load(Z, 0)
        b.ret(v)
        m = make_machine(b.function(), writer_zw())
        t = m.spawn("ro", cpu=0)
        i_z = load_insn_addrs(m, "ro")[1]
        m.oemu.read_old_value_at(t.thread_id, i_z)
        m.interp.step(t)          # rmb
        m.run("writer2", cpu=1)   # Z=1, W=2
        m.interp.step(t)          # READ_ONCE(W): window resets to now
        assert m.interp.run(t) == 1  # Z's old value no longer reachable

    def test_acquire_load_never_versioned(self):
        b = Builder("acq")
        b.rmb()
        v = b.load_acquire(Z, 0)
        b.ret(v)
        m = make_machine(b.function(), writer_zw())
        t = m.spawn("acq", cpu=0)
        i_z = load_insn_addrs(m, "acq")[0]
        m.oemu.read_old_value_at(t.thread_id, i_z)
        m.interp.step(t)
        m.run("writer2", cpu=1)
        assert m.interp.run(t) == 1  # acquire ignores the version request


class TestAtomics:
    def test_relaxed_clear_bit_does_not_flush(self):
        """The Figure 8 semantics: clear_bit leaves delayed stores parked."""
        b = Builder("unlock_relaxed")
        b.store(X, 0, 1)
        b.clear_bit(0, Y, 0)
        b.ret()
        m = make_machine(b.function())
        t = m.spawn("unlock_relaxed")
        m.oemu.delay_store_at(t.thread_id, store_insn_addrs(m, "unlock_relaxed")[0])
        m.interp.run(t)
        assert m.memory.load(X, 8) == 0  # still in the buffer: bug surface

    def test_clear_bit_unlock_flushes(self):
        b = Builder("unlock_release")
        b.store(X, 0, 1)
        b.clear_bit_unlock(0, Y, 0)
        b.ret()
        m = make_machine(b.function())
        t = m.spawn("unlock_release")
        m.oemu.delay_store_at(t.thread_id, store_insn_addrs(m, "unlock_release")[0])
        m.interp.run(t)
        assert m.memory.load(X, 8) == 1  # release semantics committed it

    def test_test_and_set_bit_full_barrier(self):
        b = Builder("tasb")
        b.store(X, 0, 1)
        old = b.test_and_set_bit(3, Y, 0)
        b.ret(old)
        m = make_machine(b.function())
        t = m.spawn("tasb")
        m.oemu.delay_store_at(t.thread_id, store_insn_addrs(m, "tasb")[0])
        assert m.interp.run(t) == 0
        assert m.memory.load(X, 8) == 1
        assert m.memory.load(Y, 8) == 8

    def test_atomic_on_buffered_address_flushes_for_consistency(self):
        b = Builder("overlap")
        b.store(X, 0, 0b100)
        old = b.test_and_set_bit(0, X, 0)
        v = b.load(X, 0)
        b.ret(v)
        m = make_machine(b.function())
        t = m.spawn("overlap")
        m.oemu.delay_store_at(t.thread_id, store_insn_addrs(m, "overlap")[0])
        assert m.interp.run(t) == 0b101

    def test_cmpxchg(self):
        b = Builder("cas", params=["addr"])
        b.store("addr", 0, 5)
        old = b.cmpxchg("addr", 0, 5, 9)
        v = b.load("addr", 0)
        total = b.mul(old, 100)
        total = b.add(total, v)
        b.ret(total)
        m = make_machine(b.function())
        assert m.run("cas", (X,)) == 5 * 100 + 9


class TestTable2Interfaces:
    def test_controls_are_per_thread(self):
        m = make_machine(writer_xy())
        t1 = m.spawn("writer", cpu=0)
        t2 = m.spawn("writer", cpu=1)
        i1, _ = store_insn_addrs(m, "writer")
        m.oemu.delay_store_at(t1.thread_id, i1)
        m.interp.step(t2)  # thread 2 is unaffected
        assert m.memory.load(X, 8) == 1

    def test_clear_controls(self):
        m = make_machine(writer_xy())
        t = m.spawn("writer")
        i1, _ = store_insn_addrs(m, "writer")
        m.oemu.delay_store_at(t.thread_id, i1)
        m.oemu.clear_controls(t.thread_id)
        m.interp.step(t)
        assert m.memory.load(X, 8) == 1

    def test_syscall_exit_flushes(self):
        m = make_machine(writer_xy())
        t = m.spawn("writer")
        i1, _ = store_insn_addrs(m, "writer")
        m.oemu.delay_store_at(t.thread_id, i1)
        m.interp.step(t)
        m.oemu.on_syscall_exit(t.thread_id)
        assert m.memory.load(X, 8) == 1

    def test_stats_counters(self):
        m = make_machine(writer_xy())
        t = m.spawn("writer")
        i1, _ = store_insn_addrs(m, "writer")
        m.oemu.delay_store_at(t.thread_id, i1)
        m.interp.run(t)
        assert m.oemu.stats.stores == 2
        assert m.oemu.stats.delayed == 1
        assert m.oemu.stats.commits == 2
