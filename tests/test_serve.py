"""Tests for `repro serve` — the always-on campaign service.

Three contracts under test:

* **Routes** — every endpoint answers through ``app.dispatch`` alone
  (the in-process transport; no sockets in CI), with typed errors
  (404 unknown campaign, 405 wrong method, 400 bad payloads, 409
  illegal lifecycle transitions).
* **Lifecycle** — the campaign state machine in ``campaign_api``
  only permits the documented transitions, and pause/resume through
  the REST surface produces a result equal to an uninterrupted run.
* **Durability** — SIGKILL the daemon mid-campaign, restart on the
  same state directory, and ``recover()`` resumes from the checkpoint
  to a result equal (stats/crashes/shards) to a never-killed run.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import textwrap
import threading
import time

import pytest

from repro.campaign_api import (
    CAMPAIGN_STATES,
    LIFECYCLE,
    TERMINAL_STATES,
    can_transition,
    validate_transition,
)
from repro.errors import ConfigError
from repro.fuzzer.supervisor import MANIFEST_NAME
from repro.serve.app import HttpRequest, ServeApp
from repro.serve.routes import ROUTES, match_route
from repro.serve.service import CampaignService

#: Small enough to finish in seconds, big enough to find crashes.
TINY = {"iterations": 6, "seed": 3}
#: Durability spec: small batches + per-batch checkpoints so pause and
#: SIGKILL land mid-campaign with completed work already on disk.
DURABLE = {"iterations": 18, "seed": 2, "batch_size": 2, "checkpoint_every": 1}


def dispatch(app, method, path, body=None, query=None):
    """Run one request through the in-process transport."""
    payload = b""
    if body is not None:
        payload = body if isinstance(body, bytes) else json.dumps(body).encode()
    request = HttpRequest(
        method=method, path=path, query=query or {}, body=payload
    )
    return asyncio.run(app.dispatch(request))


def _strip_seconds(node):
    if isinstance(node, dict):
        return {k: _strip_seconds(v) for k, v in node.items() if k != "seconds"}
    if isinstance(node, list):
        return [_strip_seconds(v) for v in node]
    return node


def result_parts(result_text):
    """The determinism-relevant parts of a CampaignResult JSON blob.

    Specs differ by checkpoint_dir and wall-clock ``seconds`` is
    telemetry, so equality is asserted on stats/crashes/shards with
    timings stripped (the same convention test_supervisor.py relies on
    via the dataclasses' ``compare=False`` fields).
    """
    data = json.loads(result_text)
    return _strip_seconds({k: data[k] for k in ("stats", "crashes", "shards")})


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """A service with one tiny campaign already run to completion."""
    svc = CampaignService(
        str(tmp_path_factory.mktemp("serve")), max_concurrent=1
    )
    app = ServeApp(svc)
    resp = dispatch(app, "POST", "/api/campaigns", TINY)
    assert resp.status == 200
    cid = resp.json()["campaign_id"]
    assert svc.wait(cid, timeout=300) == "completed"
    yield svc, app, cid
    svc.close()


@pytest.fixture(scope="module")
def clean_durable(tmp_path_factory):
    """One uninterrupted run of DURABLE every durability test compares
    against (as CampaignResult JSON)."""
    svc = CampaignService(
        str(tmp_path_factory.mktemp("clean")), max_concurrent=1
    )
    mc = svc.submit(dict(DURABLE))
    assert svc.wait(mc.id, timeout=600) == "completed"
    text = svc.result_json(mc.id)
    svc.close()
    assert text is not None
    return text


class TestLifecycleMachine:
    def test_every_state_is_mapped(self):
        assert set(LIFECYCLE) == set(CAMPAIGN_STATES)

    def test_terminal_states_have_no_exits(self):
        for state in TERMINAL_STATES:
            assert LIFECYCLE[state] == ()

    def test_documented_transitions(self):
        assert can_transition("queued", "running")
        assert can_transition("running", "pausing")
        assert can_transition("pausing", "paused")
        assert can_transition("paused", "queued")
        assert can_transition("running", "queued")  # daemon-restart edge
        assert not can_transition("completed", "running")
        assert not can_transition("paused", "running")  # must re-queue

    def test_validate_transition_raises(self):
        validate_transition("queued", "running")
        with pytest.raises(ConfigError):
            validate_transition("completed", "queued")
        with pytest.raises(ConfigError):
            validate_transition("nonsense", "queued")


class TestRouteTable:
    def test_handlers_exist_and_are_async(self):
        for route in ROUTES:
            handler = getattr(ServeApp, route.handler)
            assert asyncio.iscoroutinefunction(handler), route.handler

    def test_method_path_pairs_unique(self):
        pairs = [(r.method, r.path) for r in ROUTES]
        assert len(pairs) == len(set(pairs))

    def test_path_params_captured(self):
        route, params = match_route(
            "GET", "/api/campaigns/c0001/artifacts/x.json"
        )
        assert route.handler == "download_artifact"
        assert params == {"id": "c0001", "name": "x.json"}

    def test_no_route(self):
        assert match_route("GET", "/api/nothing") == (None, None)
        assert match_route("DELETE", "/api/health") == (None, None)


class TestApi:
    def test_health(self, served):
        _svc, app, _cid = served
        payload = dispatch(app, "GET", "/api/health").json()
        assert payload["status"] == "ok"
        assert payload["campaigns"].get("completed", 0) >= 1

    def test_campaign_listing_and_detail(self, served):
        _svc, app, cid = served
        listing = dispatch(app, "GET", "/api/campaigns").json()
        assert cid in [c["id"] for c in listing["campaigns"]]
        detail = dispatch(app, "GET", f"/api/campaigns/{cid}").json()
        assert detail["state"] == "completed"
        assert detail["spec"]["iterations"] == TINY["iterations"]
        assert detail["result"]["tests_run"] > 0
        assert detail["progress"]["done"] == detail["progress"]["batches"]

    def test_result_is_campaign_result_json(self, served):
        _svc, app, cid = served
        resp = dispatch(app, "GET", f"/api/campaigns/{cid}/result")
        assert resp.status == 200
        from repro.campaign_api import CampaignResult

        result = CampaignResult.from_json(resp.body.decode())
        assert result.stats.tests_run > 0
        assert not result.interrupted

    def test_crashes_reference_artifacts(self, served):
        _svc, app, cid = served
        crashes = dispatch(
            app, "GET", f"/api/campaigns/{cid}/crashes"
        ).json()["crashes"]
        assert crashes, "the tiny campaign should find crashes"
        named = [c for c in crashes if c["artifact"]]
        assert named, "completed campaigns ship downloadable artifacts"
        listing = dispatch(
            app, "GET", f"/api/campaigns/{cid}/artifacts"
        ).json()["artifacts"]
        for crash in named:
            assert crash["artifact"] in listing

    def test_artifact_download_and_stored_replay(self, served):
        _svc, app, cid = served
        name = dispatch(
            app, "GET", f"/api/campaigns/{cid}/artifacts"
        ).json()["artifacts"][0]
        resp = dispatch(app, "GET", f"/api/campaigns/{cid}/artifacts/{name}")
        assert resp.status == 200
        artifact = json.loads(resp.body.decode())
        assert artifact["kind"] == "ozz-crash-artifact"
        replay = dispatch(
            app, "GET", f"/api/campaigns/{cid}/artifacts/{name}/replay"
        ).json()
        assert replay["verdict"]["ok"] is True
        assert replay["feed"], "replay must produce an annotated feed"
        assert any(e["is_crash_event"] for e in replay["feed"])
        for entry in replay["feed"]:
            assert {"i", "kind", "layer", "description", "event"} <= set(entry)

    def test_posted_replay(self, served):
        _svc, app, cid = served
        name = dispatch(
            app, "GET", f"/api/campaigns/{cid}/artifacts"
        ).json()["artifacts"][0]
        body = dispatch(
            app, "GET", f"/api/campaigns/{cid}/artifacts/{name}"
        ).body
        replay = dispatch(app, "POST", "/api/replay", body=body).json()
        assert replay["verdict"]["ok"] is True

    def test_merged_stats(self, served):
        _svc, app, _cid = served
        stats = dispatch(app, "GET", "/api/stats").json()
        assert stats["tests_run"] > 0
        assert stats["unique_titles"] == len(stats["crashes"])
        assert isinstance(stats["found_table3"], list)

    def test_events_poll_pagination(self, served):
        _svc, app, _cid = served
        page = dispatch(app, "GET", "/api/events/poll").json()
        assert page["events"], "a finished campaign left events in the ring"
        kinds = {e["kind"] for e in page["events"]}
        assert "campaign-state" in kinds
        assert "shard-heartbeat" in kinds
        again = dispatch(
            app, "GET", "/api/events/poll", query={"since": str(page["next"])}
        ).json()
        assert again["events"] == []

    def test_events_stream_replays_ring(self, served):
        _svc, app, _cid = served

        async def first_frames(n):
            resp = await app.dispatch(
                HttpRequest("GET", "/api/events", query={"since": "0"})
            )
            assert resp.streaming
            assert resp.content_type.startswith("text/event-stream")
            frames = []
            gen = resp.body
            async for chunk in gen:
                frames.append(chunk)
                if len(frames) >= n:
                    break
            await gen.aclose()  # must unsubscribe cleanly
            return frames

        frames = asyncio.run(first_frames(3))
        for frame in frames:
            text = frame.decode()
            assert text.startswith("id: ")
            payload = json.loads(text.split("data: ", 1)[1].strip())
            assert "kind" in payload and "seq" in payload

    def test_dashboard_and_assets(self, served):
        _svc, app, _cid = served
        page = dispatch(app, "GET", "/")
        assert page.content_type.startswith("text/html")
        html = page.body.decode()
        assert "Crash explorer" in html
        for asset, marker in (
            ("app.js", "renderFeed"),
            ("style.css", "crash-event"),
        ):
            resp = dispatch(app, "GET", f"/static/{asset}")
            assert resp.status == 200
            assert marker in resp.body.decode()

    # -- error paths -------------------------------------------------------

    def test_unknown_campaign_404(self, served):
        _svc, app, _cid = served
        resp = dispatch(app, "GET", "/api/campaigns/c9999")
        assert resp.status == 404
        assert "c9999" in resp.json()["error"]

    def test_wrong_method_405(self, served):
        _svc, app, _cid = served
        assert dispatch(app, "POST", "/api/health").status == 405
        assert dispatch(app, "GET", "/api/replay").status == 405

    def test_submit_rejections_400(self, served):
        _svc, app, _cid = served
        bad = dispatch(app, "POST", "/api/campaigns", body=b"{nope")
        assert bad.status == 400
        unknown = dispatch(app, "POST", "/api/campaigns", {"iterationz": 5})
        assert unknown.status == 400
        assert "iterationz" in unknown.json()["error"]
        owned = dispatch(
            app, "POST", "/api/campaigns", {"checkpoint_dir": "/tmp/x"}
        )
        assert owned.status == 400
        assert "service-owned" in owned.json()["error"]

    def test_illegal_transition_409(self, served):
        _svc, app, cid = served
        resp = dispatch(app, "POST", f"/api/campaigns/{cid}/resume")
        assert resp.status == 409

    def test_artifact_name_traversal_rejected(self, served):
        _svc, app, cid = served
        resp = dispatch(
            app, "GET", f"/api/campaigns/{cid}/artifacts/..%2Fservice.json"
        )
        # the ".." segment never matches a stored artifact; a literal
        # separator is rejected by the service before touching the disk
        assert resp.status in (400, 404)
        with pytest.raises(ConfigError):
            served[0].artifact_text(cid, "../service.json")
        with pytest.raises(ConfigError):
            served[0].artifact_text(cid, ".hidden.json")

    def test_posted_replay_rejects_garbage_400(self, served):
        _svc, app, _cid = served
        resp = dispatch(app, "POST", "/api/replay", body=b"not json at all")
        assert resp.status == 400
        assert "not a crash artifact" in resp.json()["error"]


class TestRegistryPersistence:
    def test_registry_survives_reload(self, served):
        svc, _app, cid = served
        reloaded = CampaignService(svc.state_dir, max_concurrent=1)
        assert cid in reloaded.campaign_ids()
        summary = reloaded.summary(cid)
        assert summary["state"] == "completed"
        assert summary["result"]["tests_run"] > 0
        assert reloaded.recover() == []  # nothing to requeue

    def test_submit_ids_monotonic_across_restarts(self, tmp_path):
        svc = CampaignService(str(tmp_path), max_concurrent=1)
        first = svc.submit(dict(TINY))
        svc.wait(first.id, timeout=300)
        svc.close()
        again = CampaignService(str(tmp_path), max_concurrent=1)
        second = again.submit(dict(TINY))
        assert second.id != first.id
        again.cancel(second.id)
        again.wait(second.id, timeout=60)
        again.close()


class TestPauseResume:
    def test_pause_resume_round_trip_equals_clean(self, tmp_path, clean_durable):
        svc = CampaignService(str(tmp_path / "state"), max_concurrent=1)
        app = ServeApp(svc)
        heartbeat = threading.Event()
        svc.hub.subscribe(
            lambda e: heartbeat.set() if e.get("kind") == "shard-heartbeat" else None
        )
        cid = dispatch(app, "POST", "/api/campaigns", DURABLE).json()[
            "campaign_id"
        ]
        assert heartbeat.wait(120), "campaign produced no heartbeat"
        resp = dispatch(app, "POST", f"/api/campaigns/{cid}/pause")
        assert resp.json()["state"] in ("pausing", "paused")
        assert svc.wait(cid, timeout=300) in ("paused", "completed")
        state = svc.summary(cid)["state"]
        if state == "paused":
            # while paused: a manifest on disk, no result yet
            assert os.path.exists(
                os.path.join(svc.checkpoint_dir(cid), MANIFEST_NAME)
            )
            assert (
                dispatch(app, "GET", f"/api/campaigns/{cid}/result").status
                == 404
            )
            resumed = dispatch(app, "POST", f"/api/campaigns/{cid}/resume")
            # re-queued; promoted straight to running when a slot is free
            assert resumed.json()["state"] in ("queued", "running")
            assert svc.wait(cid, timeout=600) == "completed"
        resp = dispatch(app, "GET", f"/api/campaigns/{cid}/result")
        assert result_parts(resp.body.decode()) == result_parts(clean_durable)
        svc.close()

    def test_pause_of_queued_campaign_holds_it(self, tmp_path):
        svc = CampaignService(str(tmp_path), max_concurrent=1)
        # Fill the single slot so the next submission stays queued.
        running = svc.submit(dict(DURABLE))
        held = svc.submit(dict(TINY))
        assert held.state == "queued"
        assert svc.pause(held.id).state == "paused"
        svc.cancel(running.id)
        svc.cancel(held.id)
        svc.wait(running.id, timeout=120)
        svc.close()

    def test_cancel_is_terminal(self, tmp_path):
        svc = CampaignService(str(tmp_path), max_concurrent=1)
        mc = svc.submit(dict(DURABLE))
        svc.cancel(mc.id)
        # "completed" only if every batch finished before the stop
        # landed — either way the campaign is terminal and stays so.
        state = svc.wait(mc.id, timeout=120)
        assert state in TERMINAL_STATES
        with pytest.raises(ConfigError):
            svc.resume(mc.id)
        svc.close()


class TestKillRestart:
    def test_sigkill_then_recover_equals_clean(self, tmp_path, clean_durable):
        """The headline durability contract: SIGKILL the daemon process
        mid-campaign, restart a service on the same state directory, and
        recover() must resume the campaign from its checkpoint to a
        result equal to an uninterrupted run."""
        state_dir = str(tmp_path / "state")
        script = textwrap.dedent(
            """
            import json, sys
            from repro.serve.service import CampaignService

            svc = CampaignService(sys.argv[1], max_concurrent=1)
            mc = svc.submit(json.loads(sys.argv[2]))
            print(mc.id, flush=True)
            svc.wait(mc.id, timeout=600)
            """
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [os.path.abspath("src"), env.get("PYTHONPATH")])
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", script, state_dir, json.dumps(DURABLE)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            cid = proc.stdout.readline().strip()
            assert cid, proc.communicate()[1]
            # Wait for a completed batch checkpoint — killing before any
            # work is durable would just test a fresh run.
            shard0 = os.path.join(state_dir, "campaigns", cid, "ckpt",
                                  "shard-000.json")
            deadline = time.monotonic() + 180
            while not os.path.exists(shard0):
                assert time.monotonic() < deadline, "no checkpoint written"
                assert proc.poll() is None, proc.communicate()[1]
                time.sleep(0.05)
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)

        svc = CampaignService(state_dir, max_concurrent=1)
        # The registry still says "running" — the daemon died without
        # transitioning; recover() requeues exactly that campaign.
        assert svc.summary(cid)["state"] == "running"
        assert svc.recover() == [cid]
        assert svc.wait(cid, timeout=600) == "completed"
        assert result_parts(svc.result_json(cid)) == result_parts(
            clean_durable
        )
        svc.close()
