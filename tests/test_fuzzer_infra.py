"""Tests for fuzzer infrastructure: KCov, corpus, triage, STI runs, MTIs."""

import random

import pytest

from repro.config import KernelConfig
from repro.fuzzer.corpus import Corpus
from repro.fuzzer.kcov import CoverageMap, KCov
from repro.fuzzer.mti import MTI, run_mti
from repro.fuzzer.sti import Call, ResourceRef, STI, profile_sti, resolve_args
from repro.fuzzer.triage import CrashDB
from repro.fuzzer.hints import SchedulingHint, calculate_hints
from repro.kernel.kernel import KernelImage
from repro.oracles.report import CrashReport


@pytest.fixture(scope="module")
def image():
    return KernelImage(KernelConfig())


class TestKCov:
    def test_per_thread_sets(self):
        kcov = KCov()
        kcov.on_insn(1, 0x100)
        kcov.on_insn(1, 0x104)
        kcov.on_insn(2, 0x100)
        assert kcov.coverage_of(1) == {0x100, 0x104}
        assert kcov.coverage_of(2) == {0x100}

    def test_disable(self):
        kcov = KCov()
        kcov.enabled = False
        kcov.on_insn(1, 0x100)
        assert not kcov.coverage_of(1)

    def test_coverage_map_reports_new(self):
        cov = CoverageMap()
        assert cov.merge({1, 2, 3}) == 3
        assert cov.merge({2, 3, 4}) == 1
        assert len(cov) == 4


class TestSTI:
    def test_resolve_args(self):
        call = Call("f", (5, ResourceRef(0), ResourceRef(9)))
        assert resolve_args(call, [42]) == (5, 42, 0)

    def test_profile_records_per_call(self, image):
        sti = STI((Call("watch_queue_create"), Call("watch_queue_post", (9,))))
        result = profile_sti(image, sti)
        assert result.ok
        assert len(result.profiles) == 2
        post = result.profiles[1]
        assert post.syscall == "watch_queue_post"
        assert post.stores() and post.accesses

    def test_profile_collects_coverage(self, image):
        sti = STI((Call("null"),))
        result = profile_sti(image, sti)
        assert result.coverage

    def test_resource_flow_through_profiling(self, image):
        sti = STI((Call("socket"), Call("tls_init", (ResourceRef(0),))))
        result = profile_sti(image, sti)
        assert result.retvals[0] >= 3
        # tls_init found the socket: it allocated and stored a context.
        assert any(a.is_write for a in result.profiles[1].accesses)

    def test_sti_repr_and_with_call(self):
        sti = STI((Call("socket"),))
        extended = sti.with_call(Call("tls_init", (ResourceRef(0),)))
        assert len(extended) == 2
        assert "tls_init(ret0)" in repr(extended)


class TestCorpus:
    def test_admission_requires_new_coverage(self):
        corpus = Corpus()
        from repro.fuzzer.sti import STIResult

        first = STIResult(sti=STI((Call("null"),)), coverage=frozenset({1, 2}))
        again = STIResult(sti=STI((Call("null"),)), coverage=frozenset({1, 2}))
        more = STIResult(sti=STI((Call("getpid"),)), coverage=frozenset({2, 3}))
        assert corpus.consider(first)
        assert not corpus.consider(again)
        assert corpus.consider(more)
        assert len(corpus) == 2 and corpus.total_coverage == 3

    def test_pick(self):
        corpus = Corpus()
        assert corpus.pick(random.Random(0)) is None
        from repro.fuzzer.sti import STIResult

        corpus.consider(STIResult(sti=STI((Call("null"),)), coverage=frozenset({1})))
        assert corpus.pick(random.Random(0)) is not None


class TestTriage:
    def test_dedup_by_title(self):
        db = CrashDB()
        r1 = CrashReport(title="T", oracle="fault", function="f")
        r2 = CrashReport(title="T", oracle="fault", function="f")
        db.add(r1, 10)
        rec = db.add(r2, 20)
        assert rec.count == 2 and rec.first_test_index == 10
        assert db.unique_titles == ["T"]

    def test_bug_matching(self):
        from repro.kernel import bugs

        db = CrashDB()
        spec = bugs.get("t3_rds_xmit")
        rec = db.add(CrashReport(title=spec.title, oracle="kasan", function="rds_loop_xmit"))
        assert rec.bug_id == "t3_rds_xmit"
        assert db.found_table3() == ["t3_rds_xmit"]
        assert db.found_table4() == []

    def test_summary_renders(self):
        db = CrashDB()
        db.add(CrashReport(title="Some crash", oracle="fault", function="f"))
        assert "Some crash" in db.summary()


class TestMTI:
    def test_run_mti_clean_pair(self, image):
        sti = STI((Call("null"), Call("getpid")))
        profile = profile_sti(image, sti)
        hints = calculate_hints(profile.profiles[0], profile.profiles[1])
        # null/getpid only read; there may be no hints at all.
        if hints:
            result = run_mti(image, MTI(sti=sti, pair=(0, 1), hint=hints[0]))
            assert not result.crashed

    def test_resource_refs_across_the_pair(self, image):
        """A call after the concurrent pair can consume the pair's fd."""
        sti = STI((
            Call("creat", (2,)),
            Call("stat", (2,)),
            Call("fs_open", (2,)),
            Call("fs_read", (ResourceRef(2),)),
        ))
        profile = profile_sti(image, sti)
        assert profile.ok
        hints = calculate_hints(profile.profiles[1], profile.profiles[2])
        hint = hints[0] if hints else SchedulingHint("st", 0, 0xDEAD0000, 1, (0xDEAD0000,), 1)
        result = run_mti(image, MTI(sti=sti, pair=(1, 2), hint=hint))
        assert not result.crashed

    def test_sequential_prefix_crash_is_reported(self, image):
        """Crashes outside the pair are still recorded (without OOO
        context) — they would be non-concurrency bugs."""
        sti = STI((Call("null"), Call("getpid"), Call("null")))
        profile = profile_sti(image, sti)
        # no crash possible here; just check phases are labelled
        hints = calculate_hints(profile.profiles[1], profile.profiles[2])
        if hints:
            result = run_mti(image, MTI(sti=sti, pair=(1, 2), hint=hints[0]))
            assert result.phase == "" or result.phase.startswith(("pair", "sequential"))
