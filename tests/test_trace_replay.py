"""Record/replay acceptance tests (the ExecTrace deterministic-replay loop).

The headline property: a seeded-bug crash found by fuzzing produces a
schedule artifact that ``repro replay`` reproduces deterministically —
same oracle, same reordered instruction addresses, same event stream
byte-for-byte.
"""

import json

import pytest

from repro.config import KernelConfig
from repro.fuzzer.fuzzer import OzzFuzzer
from repro.kernel.kernel import KernelImage
from repro.trace.replayer import (
    ARTIFACT_KIND,
    ArtifactError,
    CrashArtifact,
    record_crash_artifact,
    replay_artifact,
)


@pytest.fixture(scope="module")
def image():
    return KernelImage(KernelConfig())


@pytest.fixture(scope="module")
def fuzzed(image):
    """A short campaign that finds seeded OOO bugs (deterministic seed)."""
    fuzzer = OzzFuzzer(image, seed=1)
    fuzzer.run(6)
    assert fuzzer.crashdb.records, "campaign found no crashes"
    return fuzzer


def ooo_record(fuzzed):
    """A fuzz-found record whose crash came from the reordered pair."""
    for rec in fuzzed.crashdb.records.values():
        if rec.artifact is not None and rec.artifact.reordered_insns:
            return rec
    pytest.fail("no OOO crash with an artifact was found")


class TestFuzzerIntegration:
    def test_first_crash_gets_an_artifact(self, fuzzed):
        rec = ooo_record(fuzzed)
        art = rec.artifact
        assert art.title == rec.title
        assert art.schedule["n_events"] > 0
        assert art.event_index is not None
        # The dedup'd report carries the schedule and the firing index.
        assert rec.first_report.schedule is art.schedule
        assert rec.first_report.event_index is not None
        assert "trace event index" in rec.first_report.render()

    def test_artifact_survives_crashdb_merge(self, fuzzed, image):
        from repro.fuzzer.triage import CrashDB

        other = CrashDB()
        merged = fuzzed.crashdb.merge(other)
        rec = ooo_record(fuzzed)
        assert merged.records[rec.title].artifact is rec.artifact

    def test_artifacts_can_be_disabled(self, image):
        fuzzer = OzzFuzzer(image, seed=1, record_artifacts=False)
        fuzzer.run(3)
        assert all(r.artifact is None for r in fuzzer.crashdb.records.values())


class TestDeterministicReplay:
    def test_fuzz_found_crash_replays_exactly(self, fuzzed, image):
        """Acceptance: fuzz -> artifact -> JSON round trip -> replay OK."""
        art = ooo_record(fuzzed).artifact
        loaded = CrashArtifact.from_json(art.to_json())
        assert loaded.to_json() == art.to_json()
        verdict = replay_artifact(loaded, image)
        assert verdict.ok, verdict.render()
        assert verdict.events_compared == len(art.schedule["events"])
        # Same oracle, same reordered instruction addresses.
        crash = verdict.result.crash
        assert crash.oracle == art.oracle
        assert tuple(crash.reordered_insns) == art.reordered_insns
        assert "byte-for-byte" in verdict.render()

    def test_save_and_load(self, fuzzed, tmp_path):
        art = ooo_record(fuzzed).artifact
        path = str(tmp_path / "crash.json")
        art.save(path)
        with open(path) as fh:
            payload = json.load(fh)
        assert payload["kind"] == ARTIFACT_KIND
        assert payload["version"] == 1
        assert payload["schedule"]["events"]
        loaded = CrashArtifact.load(path)
        assert loaded == art

    def test_tampered_schedule_is_detected(self, fuzzed, image):
        """A forged event stream must not replay clean."""
        art = ooo_record(fuzzed).artifact
        payload = json.loads(art.to_json())
        payload["schedule"]["events"][0]["kind"] = "note"
        payload["schedule"]["events"][0] = {"kind": "note", "message": "forged", "i": 0}
        forged = CrashArtifact.from_json(json.dumps(payload))
        verdict = replay_artifact(forged, image)
        assert not verdict.ok
        assert any("diverge" in m for m in verdict.mismatches)

    def test_wrong_crash_identity_is_detected(self, fuzzed, image):
        art = ooo_record(fuzzed).artifact
        payload = json.loads(art.to_json())
        payload["crash"]["oracle"] = "lockdep"
        payload["crash"]["event_index"] = 0
        forged = CrashArtifact.from_json(json.dumps(payload))
        verdict = replay_artifact(forged, image)
        assert not verdict.ok
        assert any("oracle" in m for m in verdict.mismatches)

    def test_reject_non_artifact_json(self):
        with pytest.raises(ValueError, match="not a crash artifact"):
            CrashArtifact.from_json('{"kind": "something-else"}')
        with pytest.raises(ValueError, match="version"):
            CrashArtifact.from_json(
                json.dumps({"kind": ARTIFACT_KIND, "version": 99})
            )


class TestRecordingAPI:
    def test_record_requires_a_crash(self, image):
        from repro.fuzzer.mti import MTI
        from repro.fuzzer.sti import STI, Call

        rec = None
        sti = STI((Call("getpid", ()), Call("getpid", ())))
        from repro.fuzzer.hints import SchedulingHint, ST

        hint = SchedulingHint(
            barrier_type=ST, reorder_side=0, sched_addr=0, sched_hit=1,
            reorder=(), nreorder=0,
        )
        with pytest.raises(ValueError, match="did not crash"):
            record_crash_artifact(image, MTI(sti=sti, pair=(0, 1), hint=hint))

    def test_reproducer_record_artifact(self, fuzzed, image):
        rec = ooo_record(fuzzed)
        art = rec.reproducer.record_artifact(image)
        assert art.title == rec.title
        assert replay_artifact(art, image).ok

    def test_recording_is_stable(self, fuzzed, image):
        """Two recordings of the same MTI are identical artifacts."""
        rec = ooo_record(fuzzed)
        a = rec.reproducer.record_artifact(image)
        b = rec.reproducer.record_artifact(image)
        assert a.to_json() == b.to_json()


class TestArtifactErrors:
    """Garbage in must produce :class:`ArtifactError`, never a raw
    ``KeyError``/``TypeError`` traceback — artifacts travel over HTTP
    and the CLI now, so malformed input is an expected condition."""

    def test_garbage_is_artifact_error(self):
        with pytest.raises(ArtifactError, match="invalid JSON"):
            CrashArtifact.from_json("{definitely not json")

    def test_non_object_payload(self):
        with pytest.raises(ArtifactError, match="expected a JSON object"):
            CrashArtifact.from_json("[1, 2, 3]")

    def test_wrong_kind_names_both_kinds(self):
        with pytest.raises(ArtifactError, match=ARTIFACT_KIND):
            CrashArtifact.from_json('{"kind": "something-else"}')

    def test_future_version_suggests_upgrade(self):
        with pytest.raises(ArtifactError, match="newer than this tool"):
            CrashArtifact.from_json(
                json.dumps({"kind": ARTIFACT_KIND, "version": 99})
            )

    def test_old_or_junk_version_has_no_upgrade_hint(self):
        with pytest.raises(ArtifactError) as excinfo:
            CrashArtifact.from_json(
                json.dumps({"kind": ARTIFACT_KIND, "version": "one"})
            )
        assert "newer than this tool" not in str(excinfo.value)

    def test_missing_field_is_named(self, fuzzed):
        payload = json.loads(ooo_record(fuzzed).artifact.to_json())
        del payload["crash"]["title"]
        with pytest.raises(ArtifactError, match="missing field 'title'"):
            CrashArtifact.from_json(json.dumps(payload))

    def test_artifact_error_is_a_value_error(self):
        # `repro replay` and older call sites catch ValueError.
        assert issubclass(ArtifactError, ValueError)
