"""Tests for the OEMU compiler pass (paper Figure 2)."""

import pytest

from repro.config import KernelConfig
from repro.kernel.kernel import Kernel, KernelImage
from repro.kir import Builder, Program
from repro.kir.insn import AtomicRMW, Barrier, Load, Store
from repro.machine import Machine
from repro.mem.memory import DATA_BASE
from repro.oemu.instrument import instrument_program, is_instrumented


def sample_program():
    b = Builder("f", params=["addr"])
    v = b.load("addr", 0)
    b.store("addr", 8, v)
    b.wmb()
    b.test_and_set_bit(0, "addr", 16)
    b.add(v, 1)
    b.ret()
    return Program([b.function()])


class TestPass:
    def test_rewrites_memory_instructions_only(self):
        prog, report = instrument_program(sample_program())
        kinds = {type(i).__name__: i.instrumented for i in prog.function("f").insns}
        assert kinds["Load"] and kinds["Store"] and kinds["Barrier"] and kinds["AtomicRMW"]
        assert not kinds["BinOp"] and not kinds["Ret"]
        assert report.rewritten == 4
        assert report.total_insns == 6

    def test_original_program_untouched(self):
        original = sample_program()
        instrument_program(original)
        assert not is_instrumented(original)

    def test_addresses_preserved(self):
        """Profiles recorded on the instrumented build must reference
        the same addresses as the plain build (one source tree, two
        kernels — §5)."""
        original = sample_program()
        instrumented, _ = instrument_program(original)
        for a, b in zip(original.all_insns(), instrumented.all_insns()):
            assert a.addr == b.addr
            assert type(a) is type(b)

    def test_selective_instrumentation(self):
        b1 = Builder("hot")
        b1.store(DATA_BASE, 0, 1)
        b1.ret()
        b2 = Builder("cold")
        b2.store(DATA_BASE + 8, 0, 1)
        b2.ret()
        prog = Program([b1.function(), b2.function()])
        instrumented, report = instrument_program(prog, only=lambda fn: fn == "hot")
        hot = next(i for i in instrumented.function("hot").insns if isinstance(i, Store))
        cold = next(i for i in instrumented.function("cold").insns if isinstance(i, Store))
        assert hot.instrumented and not cold.instrumented
        assert report.skipped_functions == 1

    def test_fraction(self):
        _, report = instrument_program(sample_program())
        assert 0 < report.fraction < 1


class TestKernelBuilds:
    def test_kernel_image_instruments_everything_by_default(self):
        image = KernelImage(KernelConfig())
        assert image.instrument_report is not None
        assert image.instrument_report.rewritten > 200
        assert is_instrumented(image.program)

    def test_plain_build_has_no_instrumentation(self):
        image = KernelImage(KernelConfig(instrumented=False))
        assert image.instrument_report is None
        assert not is_instrumented(image.program)

    def test_plain_and_instrumented_same_addresses(self):
        image = KernelImage(KernelConfig())
        for a, b in zip(image.plain_program.all_insns(), image.program.all_insns()):
            assert a.addr == b.addr

    def test_uninstrumented_kernel_ignores_oemu_controls(self):
        """Without the pass, delay_store_at has no effect — the Figure 2
        rewrite is what gives OEMU its hooks."""
        image = KernelImage(KernelConfig(instrumented=False))
        kernel = Kernel(image)
        func = kernel.program.function("post_one_notification")
        stores = [i for i in func.insns if isinstance(i, Store)]
        thread = kernel.spawn_syscall("watch_queue_post", (9,))
        for s in stores:
            kernel.oemu.delay_store_at(thread.thread_id, s.addr)
        kernel.interp.run(thread)
        # All stores committed despite the delay requests.
        pipe = kernel.glob("wq_pipe")
        assert kernel.peek(pipe) == 1  # head incremented

    def test_instrument_only_config_by_subsystem(self):
        image = KernelImage(KernelConfig(instrument_only=("rds",)))
        rds_store = next(
            i for i in image.program.function("sys_rds_sendmsg").insns if isinstance(i, Store)
        )
        core_insns = image.program.function("sys_ctxsw").insns
        assert rds_store.instrumented
        assert not any(i.instrumented for i in core_insns)
