"""Tests for KIRA: barrier lint, lock pairing and lint orchestration."""

import pytest

from repro.analysis import (
    check_lock_pairing,
    lint_program,
    render_report,
    static_reordering_candidates,
)
from repro.analysis.barriers import (
    LD,
    ST,
    candidate_addr_sets,
    function_candidates,
    ordering_summaries,
)
from repro.config import KernelConfig
from repro.errors import KirError
from repro.kernel import bugs
from repro.kernel.kernel import KernelImage
from repro.kir import Builder, Program


@pytest.fixture(scope="module")
def image():
    return KernelImage(KernelConfig(instrumented=False))


@pytest.fixture(scope="module")
def candidates(image):
    return static_reordering_candidates(image.plain_program)


# ---------------------------------------------------------------------------
# Table-driven acceptance: every seeded missing-barrier bug is statically
# visible as a reordering candidate of the right kind in its subsystem.
# ---------------------------------------------------------------------------

KIND_OF = {"S-S": ST, "L-L": LD}


@pytest.mark.parametrize(
    "bug_id", [b.bug_id for b in bugs.all_bugs()], ids=str
)
def test_seeded_bug_is_a_static_candidate(bug_id, image, candidates):
    """Zero executions: the lint's candidates cover every seeded bug."""
    spec = bugs.get(bug_id)
    want = KIND_OF[spec.reorder_type]
    kinds = {
        c.kind
        for c in candidates
        if image.function_owner.get(c.function) == spec.subsystem
    }
    assert want in kinds, (
        f"{bug_id}: no {want} candidate in subsystem {spec.subsystem}"
    )


def test_vlan_candidate_names_the_buggy_pair(image, candidates):
    """Spot-check precision: t4_vlan's victim pair is flagged exactly —
    the slot-pointer store vs the count store in sys_vlan_add."""
    vlan = [c for c in candidates if c.function == "sys_vlan_add"]
    assert len(vlan) == 1 and vlan[0].kind == ST


# ---------------------------------------------------------------------------
# Barrier lint unit tests on hand-built functions.
# ---------------------------------------------------------------------------

A, B = 0x1000, 0x2000  # two distinct global addresses


def finish(b):
    b.ret()
    return b.function()


class TestBarrierLint:
    def test_unordered_store_pair_is_candidate(self):
        b = Builder("f")
        b.store(A, 0, 1)
        b.store(B, 0, 1)
        cands = function_candidates(finish(b))
        assert [(c.kind, c.x_index, c.y_index) for c in cands] == [(ST, 0, 1)]

    def test_wmb_between_stores_orders(self):
        b = Builder("f")
        b.store(A, 0, 1)
        b.wmb()
        b.store(B, 0, 1)
        assert function_candidates(finish(b)) == []

    def test_release_store_later_is_ordered(self):
        b = Builder("f")
        b.store(A, 0, 1)
        b.store_release(B, 0, 1)
        assert function_candidates(finish(b)) == []

    def test_same_location_is_not_a_candidate(self):
        b = Builder("f")
        b.store(A, 0, 1)
        b.store(A, 0, 2)
        assert function_candidates(finish(b)) == []

    def test_rmb_between_loads_orders(self):
        b = Builder("f")
        b.load(A)
        b.rmb()
        b.load(B)
        assert function_candidates(finish(b)) == []

    def test_unordered_load_pair_is_candidate(self):
        b = Builder("f")
        b.load(A)
        b.load(B)
        cands = function_candidates(finish(b))
        assert [(c.kind, c.x_index, c.y_index) for c in cands] == [(LD, 0, 1)]

    def test_read_once_first_load_bounds_window(self):
        b = Builder("f")
        b.read_once(A)
        b.load(B)
        assert function_candidates(finish(b)) == []

    def test_alpha_rule_plain_address_dependency_is_candidate(self):
        # plain load feeding the second load's address: still reorderable
        # ("AND THEN THERE WAS ALPHA") because X is not annotated.
        b = Builder("f")
        p = b.load(A)
        b.load(p, 8)
        cands = function_candidates(finish(b))
        assert [(c.kind, c.x_index) for c in cands] == [(LD, 0)]

    def test_spin_lock_blocks_load_pair(self):
        b = Builder("f")
        b.load(A)
        b.helper_void("spin_lock", 0x3000)
        b.load(B)
        b.helper_void("spin_unlock", 0x3000)
        cands = function_candidates(finish(b))
        assert all(c.kind != LD for c in cands)

    def test_spin_unlock_blocks_store_pair(self):
        b = Builder("f")
        b.helper_void("spin_lock", 0x3000)
        b.store(A, 0, 1)
        b.helper_void("spin_unlock", 0x3000)
        b.store(B, 0, 1)
        cands = function_candidates(finish(b))
        assert all(c.kind != ST for c in cands)

    def test_branch_around_barrier_keeps_candidate(self):
        # wmb on one arm only: an unordered path remains.
        b = Builder("f", ["p"])
        skip = b.label("skip")
        b.store(A, 0, 1)
        b.beq("p", 0, skip)
        b.wmb()
        b.bind(skip)
        b.store(B, 0, 1)
        cands = function_candidates(finish(b))
        assert any(c.kind == ST for c in cands)

    def test_callee_summary_blocks_pair(self):
        # fence() does smp_wmb on every path, so calling it orders stores.
        fb = Builder("fence")
        fb.wmb()
        fence = finish(fb)
        b = Builder("f")
        b.store(A, 0, 1)
        b.call_void("fence")
        b.store(B, 0, 1)
        func = finish(b)
        program = Program([func, fence])
        summaries = ordering_summaries(program)
        assert ST in summaries["fence"]
        assert static_reordering_candidates(program) == []

    def test_candidate_addr_sets_uses_linked_addrs(self):
        b = Builder("f")
        b.store(A, 0, 1)
        b.store(B, 0, 1)
        func = finish(b)
        Program([func])  # linking assigns addresses
        addrs = candidate_addr_sets(function_candidates(func))
        assert addrs[ST] == {func.insns[0].addr, func.insns[1].addr}
        assert addrs[LD] == frozenset()


# ---------------------------------------------------------------------------
# Lock pairing.
# ---------------------------------------------------------------------------

LOCK = 0x3000


class TestLockPairing:
    def test_balanced_is_clean(self):
        b = Builder("f")
        b.helper_void("spin_lock", LOCK)
        b.store(A, 0, 1)
        b.helper_void("spin_unlock", LOCK)
        assert check_lock_pairing(finish(b)) == []

    def test_acquire_without_release(self):
        b = Builder("f")
        b.helper_void("spin_lock", LOCK)
        found = check_lock_pairing(finish(b))
        assert [f.kind for f in found] == ["acquire-no-release"]

    def test_release_without_acquire(self):
        b = Builder("f")
        b.helper_void("spin_unlock", LOCK)
        found = check_lock_pairing(finish(b))
        assert [f.kind for f in found] == ["release-without-acquire"]

    def test_double_acquire(self):
        b = Builder("f")
        b.helper_void("spin_lock", LOCK)
        b.helper_void("spin_lock", LOCK)
        b.helper_void("spin_unlock", LOCK)
        found = check_lock_pairing(finish(b))
        assert "double-acquire" in {f.kind for f in found}

    def test_leak_on_one_path_only(self):
        # early return inside the critical section: leak on that path.
        b = Builder("f", ["p"])
        out = b.label("out")
        b.helper_void("spin_lock", LOCK)
        b.beq("p", 0, out)
        b.helper_void("spin_unlock", LOCK)
        b.ret()
        b.bind(out)
        b.ret()
        found = check_lock_pairing(b.function())
        assert {f.kind for f in found} == {"acquire-no-release"}

    def test_distinct_locks_tracked_separately(self):
        b = Builder("f")
        b.helper_void("spin_lock", LOCK)
        b.helper_void("spin_lock", LOCK + 8)
        b.helper_void("spin_unlock", LOCK + 8)
        b.helper_void("spin_unlock", LOCK)
        assert check_lock_pairing(finish(b)) == []

    def test_trylock_guarded_release_is_clean(self):
        # if (spin_trylock(l)) { ...; spin_unlock(l); } — the release is
        # only reachable on the success path, so no finding.
        b = Builder("f")
        got = b.helper("spin_trylock", LOCK)
        out = b.label("out")
        b.beq(got, 0, out)
        b.store(A, 0, 1)
        b.helper_void("spin_unlock", LOCK)
        b.bind(out)
        assert check_lock_pairing(finish(b)) == []

    def test_trylock_inverted_branch_is_clean(self):
        # if (!spin_trylock(l)) return; ...; spin_unlock(l);
        b = Builder("f")
        got = b.helper("spin_trylock", LOCK)
        crit = b.label("crit")
        b.bne(got, 0, crit)
        b.ret()
        b.bind(crit)
        b.helper_void("spin_unlock", LOCK)
        found = check_lock_pairing(finish(b))
        assert found == []

    def test_trylock_unconditional_release_is_flagged(self):
        # releasing without testing the trylock result: on the failure
        # path this unlocks a lock that was never taken.
        b = Builder("f")
        b.helper("spin_trylock", LOCK)
        b.helper_void("spin_unlock", LOCK)
        found = check_lock_pairing(finish(b))
        assert [f.kind for f in found] == ["conditional-release"]

    def test_release_on_one_path_then_merged_release(self):
        # one arm of a diamond releases, the join releases again: the
        # second release only pairs with an acquire on the other arm.
        b = Builder("f", ["p"])
        join = b.label("join")
        b.helper_void("spin_lock", LOCK)
        b.beq("p", 0, join)
        b.helper_void("spin_unlock", LOCK)
        b.bind(join)
        b.helper_void("spin_unlock", LOCK)
        found = check_lock_pairing(finish(b))
        assert "conditional-release" in {f.kind for f in found}

    def test_trylock_success_path_leak(self):
        # trylock succeeds but nothing releases: the success path leaks.
        b = Builder("f")
        got = b.helper("spin_trylock", LOCK)
        out = b.label("out")
        b.beq(got, 0, out)
        b.store(A, 0, 1)
        b.bind(out)
        found = check_lock_pairing(finish(b))
        assert {f.kind for f in found} == {"acquire-no-release"}

    def test_builtin_kernel_is_balanced(self, image):
        for func in image.plain_program.functions.values():
            assert check_lock_pairing(func) == []


# ---------------------------------------------------------------------------
# Orchestration + strict mode.
# ---------------------------------------------------------------------------


class TestLintOrchestration:
    def test_report_shape_and_counts(self, image):
        report = lint_program(
            image.plain_program,
            image.function_owner,
            roots=image.syscall_roots(),
            regions=image.global_regions(),
        )
        counts = report.counts()
        assert counts["use-before-def"] == 0
        assert counts["lock-pairing"] == 0
        assert counts["missing-barrier"] == len(report.candidates) > 0
        assert counts["race-candidate"] == len(report.races) > 0
        payload = report.to_json_dict()
        assert payload["version"] == 2
        assert len(payload["findings"]) == len(report.findings)
        base_keys = {
            "check", "kind", "subsystem", "function", "index", "message",
        }
        for f in payload["findings"]:
            if f["check"] == "race-candidate":
                assert set(f) == base_keys | {"details"}
            else:
                assert set(f) == base_keys

    def test_races_flag_off_restores_v1_checks(self, image):
        report = lint_program(
            image.plain_program, image.function_owner, races=False
        )
        assert report.counts()["race-candidate"] == 0
        assert report.races == []

    def test_subsystem_filter(self, image):
        report = lint_program(
            image.plain_program, image.function_owner, subsystems=["vlan"]
        )
        assert report.findings
        assert {f.subsystem for f in report.findings} == {"vlan"}

    def test_render_mentions_counts(self, image):
        report = lint_program(
            image.plain_program, image.function_owner, subsystems=["vlan"]
        )
        text = render_report(report)
        assert "missing-barrier" in text and "sys_vlan_add" in text

    def test_strict_mode_builds_builtin_kernel(self):
        image = KernelImage(
            KernelConfig(instrumented=False, strict_lint=True)
        )
        assert image.lint_report is not None
        assert image.lint_report.by_check("lock-pairing") == []

    def test_strict_mode_rejects_lock_imbalance(self):
        from repro.kernel.subsystem import Subsystem

        def build(cfg, glob):
            b = Builder("sys_leaky")
            b.helper_void("spin_lock", glob["leaky_lock"])
            b.ret()
            return [b.function()]

        leaky = Subsystem(
            name="leaky", build=build, globals={"leaky_lock": 8}
        )
        with pytest.raises(KirError, match="strict lint"):
            KernelImage(
                KernelConfig(instrumented=False, strict_lint=True),
                subsystems=[leaky],
            )
        # without strict_lint the same image builds fine
        KernelImage(KernelConfig(instrumented=False), subsystems=[leaky])
