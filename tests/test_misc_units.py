"""Additional unit coverage: profiler tuples, interpreter edge cases,
configuration, and the machine facade."""

import pytest

from repro.config import KernelConfig, buggy_config, fixed_config
from repro.errors import ConfigError, KirError
from repro.kir import Annot, Builder, Program
from repro.kir.insn import AtomicOp, AtomicOrdering, BarrierKind
from repro.machine import Machine
from repro.mem.memory import DATA_BASE
from repro.oemu.instrument import instrument_program
from repro.oemu.profiler import AccessEvent, BarrierEvent, Profiler

X = DATA_BASE


def profiled_machine(build, params=()):
    b = Builder("f", params=params)
    build(b)
    b.ret()
    prog, _ = instrument_program(Program([b.function()]))
    profiler = Profiler()
    m = Machine(prog, profiler=profiler)
    return m, profiler


class TestProfiler:
    def test_access_five_tuple(self):
        m, profiler = profiled_machine(lambda b: b.store(X, 0, 7, size=4))
        t = m.spawn("f")
        m.interp.run(t)
        (event,) = [e for e in profiler.events_for(t.thread_id) if isinstance(e, AccessEvent)]
        assert event.mem_addr == X and event.size == 4 and event.is_write
        assert event.inst_addr == m.program.function("f").insns[0].addr
        assert event.function == "f"
        assert event.kind == "store"

    def test_explicit_barrier_three_tuple(self):
        m, profiler = profiled_machine(lambda b: b.rmb())
        t = m.spawn("f")
        m.interp.run(t)
        (event,) = profiler.events_for(t.thread_id)
        assert isinstance(event, BarrierEvent)
        assert event.kind is BarrierKind.RMB and not event.implicit

    def test_release_store_emits_implicit_wmb_before(self):
        m, profiler = profiled_machine(lambda b: b.store_release(X, 0, 1))
        t = m.spawn("f")
        m.interp.run(t)
        events = profiler.events_for(t.thread_id)
        assert isinstance(events[0], BarrierEvent) and events[0].implicit
        assert events[0].kind is BarrierKind.WMB
        assert isinstance(events[1], AccessEvent)

    def test_acquire_load_emits_implicit_rmb_after(self):
        m, profiler = profiled_machine(lambda b: b.load_acquire(X, 0))
        t = m.spawn("f")
        m.interp.run(t)
        events = profiler.events_for(t.thread_id)
        assert isinstance(events[0], AccessEvent)
        assert isinstance(events[1], BarrierEvent) and events[1].kind is BarrierKind.RMB

    def test_full_atomic_emits_both(self):
        m, profiler = profiled_machine(lambda b: b.test_and_set_bit(0, X, 0))
        t = m.spawn("f")
        m.interp.run(t)
        kinds = [
            (type(e).__name__, getattr(e, "kind", None))
            for e in profiler.events_for(t.thread_id)
        ]
        assert kinds[0] == ("BarrierEvent", BarrierKind.WMB)
        assert kinds[1][0] == "AccessEvent"
        assert kinds[2] == ("BarrierEvent", BarrierKind.RMB)

    def test_relaxed_clear_bit_emits_no_barriers(self):
        m, profiler = profiled_machine(lambda b: b.clear_bit(0, X, 0))
        t = m.spawn("f")
        m.interp.run(t)
        assert not [e for e in profiler.events_for(t.thread_id) if isinstance(e, BarrierEvent)]

    def test_atomic_access_flagged(self):
        m, profiler = profiled_machine(lambda b: b.clear_bit(0, X, 0))
        t = m.spawn("f")
        m.interp.run(t)
        (event,) = profiler.events_for(t.thread_id)
        assert isinstance(event, AccessEvent) and event.atomic

    def test_threads_do_not_mix(self):
        m, profiler = profiled_machine(lambda b: b.store(X, 0, 1))
        t1, t2 = m.spawn("f"), m.spawn("f")
        m.interp.run(t1)
        m.interp.run(t2)
        assert len(profiler.events_for(t1.thread_id)) == 1
        assert len(profiler.events_for(t2.thread_id)) == 1

    def test_disable(self):
        m, profiler = profiled_machine(lambda b: b.store(X, 0, 1))
        profiler.enabled = False
        t = m.spawn("f")
        m.interp.run(t)
        assert profiler.events_for(t.thread_id) == []


class TestInterpEdgeCases:
    def test_call_arity_mismatch(self):
        callee = Builder("g", params=["a", "b"])
        callee.ret(0)
        caller = Builder("f")
        caller.call("g", 1)  # one arg for two params
        caller.ret()
        m = Machine(Program([callee.function(), caller.function()]))
        with pytest.raises(KirError, match="expects 2 args"):
            m.run("f")

    def test_cmpxchg_failure_path(self):
        b = Builder("f", params=["addr"])
        b.store("addr", 0, 3)
        old = b.cmpxchg("addr", 0, 99, 7)  # expected 99, actual 3 -> fail
        v = b.load("addr", 0)
        packed = b.mul(old, 10)
        packed = b.add(packed, v)
        b.ret(packed)
        m = Machine(Program([b.function()]))
        assert m.run("f", (X,)) == 33  # old=3 returned, value unchanged

    def test_fetch_add_and_add_return(self):
        b = Builder("f", params=["addr"])
        from repro.kir.insn import AtomicOp

        fa = b.atomic(AtomicOp.FETCH_ADD, "addr", 0, 5, dst="fa")
        ar = b.atomic(AtomicOp.ADD_RETURN, "addr", 0, 5, dst="ar")
        packed = b.mul(fa, 100)
        packed = b.add(packed, ar)
        b.ret(packed)
        m = Machine(Program([b.function()]))
        assert m.run("f", (X,)) == 0 * 100 + 10

    def test_set_bit(self):
        b = Builder("f", params=["addr"])
        b.set_bit(5, "addr", 0)
        v = b.load("addr", 0)
        b.ret(v)
        m = Machine(Program([b.function()]))
        assert m.run("f", (X,)) == 32

    def test_nop_advances(self):
        b = Builder("f")
        b.nop()
        b.nop()
        b.ret(9)
        m = Machine(Program([b.function()]))
        assert m.run("f") == 9

    def test_void_call_discards_result(self):
        g = Builder("g")
        g.ret(77)
        f = Builder("f")
        f.call_void("g")
        f.ret(1)
        m = Machine(Program([g.function(), f.function()]))
        assert m.run("f") == 1


class TestConfig:
    def test_patch_queries(self):
        cfg = KernelConfig(patched=frozenset({"a"}))
        assert cfg.is_patched("a") and not cfg.is_patched("b")

    def test_with_patches_accumulates(self):
        cfg = KernelConfig().with_patches(["a"]).with_patches(["b"])
        assert cfg.is_patched("a") and cfg.is_patched("b")

    def test_replace(self):
        cfg = KernelConfig().replace(ncpus=4)
        assert cfg.ncpus == 4 and cfg.instrumented

    def test_invalid_ncpus(self):
        with pytest.raises(ConfigError):
            KernelConfig(ncpus=0)

    def test_factories(self):
        assert not buggy_config().patched
        assert fixed_config(["x"]).is_patched("x")

    def test_immutability(self):
        cfg = KernelConfig()
        with pytest.raises(Exception):
            cfg.ncpus = 8


class TestMachineFacade:
    def test_thread_ids_unique(self):
        b = Builder("f")
        b.ret(0)
        m = Machine(Program([b.function()]))
        t1, t2, t3 = (m.spawn("f") for _ in range(3))
        assert len({t1.thread_id, t2.thread_id, t3.thread_id}) == 3

    def test_custom_helper_registration(self):
        b = Builder("f")
        r = b.helper("double_it", 21)
        b.ret(r)
        m = Machine(Program([b.function()]))
        m.register_helper("double_it", lambda machine, thread, x: x * 2)
        assert m.run("f") == 42

    def test_unknown_helper_raises(self):
        b = Builder("f")
        b.helper_void("ghost")
        b.ret()
        m = Machine(Program([b.function()]))
        with pytest.raises(KirError, match="unknown helper"):
            m.run("f")
