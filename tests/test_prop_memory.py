"""Property tests: paged memory behaves like a flat byte array."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem.memory import DATA_BASE, DATA_SIZE, Memory

REGION = 0x2000  # stay well inside the data region

offsets = st.integers(min_value=0, max_value=REGION - 8)
sizes = st.sampled_from([1, 2, 4, 8])
values = st.integers(min_value=0, max_value=(1 << 64) - 1)


@st.composite
def access_sequences(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    return [
        (draw(offsets), draw(sizes), draw(values))
        for _ in range(n)
    ]


class TestMemoryVsReferenceModel:
    @given(access_sequences())
    @settings(max_examples=60, deadline=None)
    def test_matches_flat_bytearray(self, seq):
        mem = Memory()
        ref = bytearray(REGION)
        for off, size, value in seq:
            data = (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
            mem.write_bytes(DATA_BASE + off, data)
            ref[off : off + size] = data
        for off, size, _ in seq:
            got = mem.read_bytes(DATA_BASE + off, size)
            assert got == bytes(ref[off : off + size])

    @given(offsets, sizes, values)
    @settings(max_examples=60, deadline=None)
    def test_store_load_roundtrip(self, off, size, value):
        mem = Memory()
        mem.store(DATA_BASE + off, size, value)
        assert mem.load(DATA_BASE + off, size) == value & ((1 << (8 * size)) - 1)

    @given(st.integers(min_value=0, max_value=0xFFF), sizes)
    @settings(max_examples=30, deadline=None)
    def test_null_page_always_faults(self, addr, size):
        from repro.mem.memory import FaultKind, MemoryFault

        mem = Memory()
        with pytest.raises(MemoryFault) as e:
            mem.load(addr, size)
        assert e.value.kind == FaultKind.NULL_DEREF

    @given(offsets, sizes, values)
    @settings(max_examples=40, deadline=None)
    def test_disjoint_writes_do_not_interfere(self, off, size, value):
        mem = Memory()
        sentinel_off = REGION + 0x100
        mem.store(DATA_BASE + sentinel_off, 8, 0xA5A5A5A5)
        mem.store(DATA_BASE + off, size, value)
        assert mem.load(DATA_BASE + sentinel_off, 8) == 0xA5A5A5A5
