"""Tests for the persistent worker pool (batch plan, stealing, policy).

Complements ``test_supervisor.py`` (fault tolerance under the legacy
one-batch-per-job plan) with the worker-pool surface this PR added:
explicit batch plans shared across job counts, work-stealing under slow
and dead workers, the ``WorkerPolicy`` sub-config, checkpoint schema v2
with the v1 reader, and the ``run_sharded`` deprecation shim.
"""

import json
import os
from dataclasses import replace

import pytest

from repro.campaign_api import (
    SEED_STRIDE,
    BatchSpec,
    CampaignSpec,
    WorkerPolicy,
    resume_campaign,
    run_campaign,
    spec_from_dict,
    spec_to_dict,
)
from repro.errors import ConfigError
from repro.fuzzer.parallel import merge_shards, run_shard, run_sharded
from repro.fuzzer.supervisor import (
    MANIFEST_NAME,
    FaultPlan,
    load_checkpoint,
    run_supervised,
)
from repro.trace import TraceRecorder


def pooled_spec(**overrides):
    base = dict(
        iterations=12, jobs=2, batch_size=3, use_seeds=True, shard_timeout=5.0
    )
    base.update(overrides)
    return CampaignSpec(**base)


class TestBatchPlan:
    def test_default_plan_is_one_batch_per_job(self):
        spec = CampaignSpec(iterations=10, jobs=4)
        plan = spec.batches()
        assert [b.index for b in plan] == [0, 1, 2, 3]
        assert [b.iterations for b in plan] == list(spec.shard_iterations())
        assert sum(b.iterations for b in plan) == 10
        assert all(b.nslices == 4 for b in plan)

    def test_explicit_batch_size_plan(self):
        spec = CampaignSpec(iterations=10, jobs=2, batch_size=4)
        plan = spec.batches()
        assert [b.iterations for b in plan] == [4, 4, 2]
        assert [b.seed for b in plan] == [spec.seed * SEED_STRIDE + b for b in range(3)]
        assert all(b.nslices == 3 for b in plan)

    def test_plan_is_independent_of_jobs(self):
        """The work queue contract: the plan is a function of the budget
        alone, so any worker count executes identical batches."""
        plans = {
            jobs: CampaignSpec(iterations=20, jobs=jobs, batch_size=4).batches()
            for jobs in (1, 2, 4)
        }
        assert plans[1] == plans[2] == plans[4]

    def test_batch_is_a_mini_shard(self):
        b = CampaignSpec(iterations=9, jobs=1, batch_size=4).batches()[1]
        assert b == BatchSpec(index=1, seed=SEED_STRIDE + 1, iterations=4, nslices=3)


class TestPoolDeterminism:
    @pytest.fixture(scope="class")
    def serial_result(self):
        return run_campaign(pooled_spec(jobs=1, shard_timeout=None))

    def test_jobs_do_not_change_the_result(self, serial_result):
        """jobs=1 (serial, in-process) == jobs=2 == jobs=4 (pooled)."""
        for jobs in (2, 4):
            result = run_campaign(pooled_spec(jobs=jobs))
            assert replace(result, spec=serial_result.spec) == serial_result

    def test_death_mid_batch_equals_clean(self, serial_result):
        clean = run_supervised(pooled_spec())
        assert replace(clean, spec=serial_result.spec) == serial_result
        faulted = run_supervised(
            pooled_spec(), faults=(FaultPlan(shard=2, iteration=1, kind="die"),)
        )
        assert faulted == clean
        assert [r.shard for r in faulted.retries] == [2]

    def test_merge_order_is_canonical(self):
        spec = pooled_spec(jobs=1, shard_timeout=None)
        shards = [run_shard(spec, k) for k in range(len(spec.batches()))]
        forward = merge_shards(spec, shards, seconds=0.0)
        backward = merge_shards(spec, list(reversed(shards)), seconds=0.0)
        assert forward == backward
        assert [s.shard for s in backward.shards] == sorted(
            s.shard for s in backward.shards
        )


class TestWorkStealing:
    def test_slow_batch_does_not_starve_the_plan(self):
        """One stalled batch must not block the queue: the sibling worker
        drains the remaining batches while the slow one sleeps."""
        sink = TraceRecorder(capacity=8192)
        spec = pooled_spec(iterations=12, batch_size=2)  # 6 batches, 2 workers
        result = run_supervised(
            spec,
            faults=(FaultPlan(shard=0, iteration=0, kind="slow"),),
            sink=sink,
        )
        assert result.retries == () and result.failed_shards == ()
        claims = [e for e in sink.events() if e.kind == "batch-claim"]
        by_worker = {}
        for e in claims:
            by_worker.setdefault(e.worker, set()).add(e.batch)
        assert set.union(*by_worker.values()) == set(range(6))
        slow_worker = next(e.worker for e in claims if e.batch == 0)
        # The stalled worker held batch 0 the whole time the other side
        # drained the queue.
        assert len(by_worker[slow_worker]) <= 2
        assert max(len(batches) for batches in by_worker.values()) >= 4

    def test_retry_after_death_is_recorded_as_a_steal(self):
        sink = TraceRecorder(capacity=8192)
        result = run_supervised(
            pooled_spec(),
            faults=(FaultPlan(shard=1, iteration=1, kind="die"),),
            sink=sink,
        )
        assert result.failed_shards == ()
        steals = [e for e in sink.events() if e.kind == "batch-steal"]
        assert steals, "retry on a fresh worker should emit batch-steal"
        assert all(e.from_worker != e.worker for e in steals)
        assert any(e.batch == 1 for e in steals)


class TestWorkerPolicy:
    def test_json_roundtrip(self):
        policy = WorkerPolicy(jobs=4, batch_size=16, shard_timeout=30.0, max_retries=5)
        assert WorkerPolicy.from_dict(policy.to_dict()) == policy
        assert json.loads(json.dumps(policy.to_dict())) == policy.to_dict()

    def test_validation(self):
        for bad in (
            dict(jobs=0),
            dict(batch_size=0),
            dict(shard_timeout=0.0),
            dict(max_retries=-1),
        ):
            with pytest.raises(ConfigError):
                WorkerPolicy(**bad)

    def test_spec_folds_policy(self):
        policy = WorkerPolicy(jobs=3, batch_size=8, shard_timeout=9.0, max_retries=1)
        spec = CampaignSpec(iterations=4, worker_policy=policy)
        assert spec.policy == policy
        assert (spec.jobs, spec.batch_size) == (3, 8)
        assert (spec.shard_timeout, spec.max_retries) == (9.0, 1)

    def test_policy_and_loose_knobs_are_one_source(self):
        spec = CampaignSpec(iterations=4, jobs=2, batch_size=5)
        assert spec.policy == WorkerPolicy(jobs=2, batch_size=5)
        bumped = replace(spec, jobs=4)
        assert bumped.policy.jobs == 4

    def test_spec_dict_nests_policy(self):
        spec = pooled_spec()
        payload = spec_to_dict(spec)
        assert payload["policy"] == spec.policy.to_dict()
        assert "jobs" not in payload  # flat v1 keys are gone
        assert spec_from_dict(payload) == spec

    def test_spec_from_dict_reads_v1_flat_keys(self):
        payload = spec_to_dict(CampaignSpec(iterations=6))
        del payload["policy"]
        payload.update(jobs=2, shard_timeout=4.0, max_retries=3)
        spec = spec_from_dict(payload)
        assert spec.policy == WorkerPolicy(
            jobs=2, batch_size=None, shard_timeout=4.0, max_retries=3
        )


class TestCheckpointV1Compat:
    def _downgrade(self, d):
        """Rewrite a v2 checkpoint directory to the v1 on-disk schema."""
        with open(os.path.join(d, MANIFEST_NAME)) as fh:
            manifest = json.load(fh)
        manifest["version"] = 1
        manifest.pop("plan")
        manifest.pop("assignments")
        policy = manifest["spec"].pop("policy")
        manifest["spec"].update(
            jobs=policy["jobs"],
            shard_timeout=policy["shard_timeout"],
            max_retries=policy["max_retries"],
        )
        with open(os.path.join(d, MANIFEST_NAME), "w") as fh:
            json.dump(manifest, fh)
        for shard in manifest["completed"]:
            path = os.path.join(d, f"shard-{shard:03d}.json")
            with open(path) as fh:
                payload = json.load(fh)
            from repro.fuzzer.kcov import CoverageMap

            payload["coverage"] = sorted(
                CoverageMap.from_hex(payload["coverage"]).addrs
            )
            with open(path, "w") as fh:
                json.dump(payload, fh)

    def test_resume_from_v1_checkpoint(self, tmp_path):
        d = str(tmp_path / "ckpt")
        spec = CampaignSpec(
            iterations=8,
            jobs=2,
            use_seeds=True,
            shard_timeout=5.0,
            checkpoint_dir=d,
            checkpoint_every=2,
            max_retries=0,
        )
        clean = run_supervised(spec)
        first = run_supervised(
            spec, faults=(FaultPlan(shard=1, iteration=1, kind="die"),)
        )
        assert [f.shard for f in first.failed_shards] == [1]
        self._downgrade(d)

        state = load_checkpoint(d)
        assert sorted(state.completed) == [0]
        assert state.spec.policy.jobs == 2

        resumed = resume_campaign(d)
        assert resumed.stats == clean.stats
        assert resumed.crashes == clean.crashes
        assert resumed.shards == clean.shards
        assert resumed.failed_shards == ()


class TestManifestV2:
    def test_manifest_records_plan_and_assignments(self, tmp_path):
        d = str(tmp_path / "ckpt")
        spec = pooled_spec(checkpoint_dir=d)
        run_supervised(spec)
        with open(os.path.join(d, MANIFEST_NAME)) as fh:
            manifest = json.load(fh)
        assert manifest["version"] == 2
        plan = spec.batches()
        assert manifest["plan"] == [
            {
                "batch": b.index,
                "seed": b.seed,
                "iterations": b.iterations,
                "slices": b.nslices,
            }
            for b in plan
        ]
        ran = {a["batch"] for a in manifest["assignments"]}
        assert ran == {b.index for b in plan}
        assert all(a["attempt"] == 0 for a in manifest["assignments"])


class TestDeprecationShim:
    def test_run_sharded_warns_and_matches_run_campaign(self):
        spec = CampaignSpec(iterations=6, jobs=2, use_seeds=True)
        with pytest.warns(DeprecationWarning, match="run_campaign"):
            old = run_sharded(spec)
        # The shim returns raw per-batch results; merged they are the
        # same campaign run_campaign produces.
        assert merge_shards(spec, old, seconds=0.0) == run_campaign(spec)
