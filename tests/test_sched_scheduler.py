"""Tests for the custom scheduler (paper §10.3, Figure 9)."""

import random

import pytest

from repro.errors import ExecutionLimitExceeded
from repro.kir import Builder, Program
from repro.kir.insn import Store
from repro.machine import Machine
from repro.mem.memory import DATA_BASE
from repro.oemu.instrument import instrument_program
from repro.sched import BreakPolicy, Breakpoint, CustomScheduler, StopReason

X = DATA_BASE
Y = DATA_BASE + 8


def counter_program():
    b = Builder("count", params=["n"])
    b.mov(0, dst="i")
    top = b.label()
    done = b.label()
    b.bind(top)
    b.bge("i", "n", done)
    b.store(X, 0, "i")
    b.add("i", 1, dst="i")
    b.jmp(top)
    b.bind(done)
    b.ret("i")
    return Program([b.function()])


def writer_program():
    b = Builder("w")
    b.store(X, 0, 1)
    b.store(Y, 0, 2)
    b.ret()
    return b.function()


class TestBreakpoints:
    def test_after_policy_stops_past_instruction(self):
        prog = Program([writer_program()])
        m = Machine(prog)
        sched = CustomScheduler(m.interp)
        store_y = [i for i in prog.function("w").insns if isinstance(i, Store)][1]
        t = m.spawn("w")
        reason = sched.run_until(t, Breakpoint(store_y.addr, BreakPolicy.AFTER))
        assert reason is StopReason.BREAKPOINT
        assert m.memory.load(Y, 8) == 2  # the instruction executed

    def test_before_policy_stops_short(self):
        prog = Program([writer_program()])
        m = Machine(prog)
        sched = CustomScheduler(m.interp)
        store_y = [i for i in prog.function("w").insns if isinstance(i, Store)][1]
        t = m.spawn("w")
        reason = sched.run_until(t, Breakpoint(store_y.addr, BreakPolicy.BEFORE))
        assert reason is StopReason.BREAKPOINT
        assert m.memory.load(X, 8) == 1   # earlier store done
        assert m.memory.load(Y, 8) == 0   # breakpointed store NOT done

    def test_hit_count_selects_nth_occurrence(self):
        prog = counter_program()
        m = Machine(prog)
        sched = CustomScheduler(m.interp)
        store = next(i for i in prog.function("count").insns if isinstance(i, Store))
        t = m.spawn("count", (5,))
        reason = sched.run_until(t, Breakpoint(store.addr, BreakPolicy.AFTER, hit=3))
        assert reason is StopReason.BREAKPOINT
        assert m.memory.load(X, 8) == 2  # third store wrote i == 2

    def test_missed_breakpoint_runs_to_completion(self):
        prog = Program([writer_program()])
        m = Machine(prog)
        sched = CustomScheduler(m.interp)
        t = m.spawn("w")
        reason = sched.run_until(t, Breakpoint(0xDEAD_0000, BreakPolicy.AFTER))
        assert reason is StopReason.FINISHED

    def test_resume_after_breakpoint(self):
        prog = Program([writer_program()])
        m = Machine(prog)
        sched = CustomScheduler(m.interp)
        store_x = [i for i in prog.function("w").insns if isinstance(i, Store)][0]
        t = m.spawn("w")
        sched.run_until(t, Breakpoint(store_x.addr, BreakPolicy.AFTER))
        assert sched.run_to_completion(t) is StopReason.FINISHED
        assert m.memory.load(Y, 8) == 2


class TestFigure9Semantics:
    def test_suspension_does_not_flush_store_buffer(self):
        """The load-bearing property of Figure 9: a delayed store stays
        uncommitted while its thread is suspended at a breakpoint."""
        prog, _ = instrument_program(Program([writer_program()]))
        m = Machine(prog)
        sched = CustomScheduler(m.interp)
        stores = [i for i in prog.function("w").insns if isinstance(i, Store)]
        t = m.spawn("w")
        m.oemu.delay_store_at(t.thread_id, stores[0].addr)
        sched.run_until(t, Breakpoint(stores[1].addr, BreakPolicy.AFTER))
        # Suspended: Y committed, X still parked in the buffer.
        assert m.memory.load(Y, 8) == 2
        assert m.memory.load(X, 8) == 0
        assert len(m.oemu.pending_stores(t.thread_id)) == 1


class TestSpinDetection:
    def test_helper_retry_loop_detected_quickly(self):
        b = Builder("locker", params=["lock"])
        b.helper_void("spin_lock", "lock")
        b.ret()
        prog = Program([b.function()])
        m = Machine(prog)

        from repro.kernel.helpers import h_spin_lock

        m.register_helper("spin_lock", h_spin_lock)
        m.lockdep.enabled = False
        m.memory.store(X, 8, 1, check=False)  # lock already held
        t = m.spawn("locker", (X,))
        sched = CustomScheduler(m.interp)
        with pytest.raises(ExecutionLimitExceeded, match="spinning"):
            sched.run_to_completion(t)
        # Detection happens in ~SPIN_LIMIT steps, not the whole budget.
        assert t.steps < CustomScheduler.SPIN_LIMIT + 16

    def test_normal_loop_is_not_flagged_as_spin(self):
        prog = counter_program()
        m = Machine(prog)
        sched = CustomScheduler(m.interp)
        t = m.spawn("count", (2000,))
        assert sched.run_to_completion(t) is StopReason.FINISHED


class TestAlternativeSchedules:
    def test_round_robin_completes_both(self):
        prog = counter_program()
        m = Machine(prog)
        t1 = m.spawn("count", (10,))
        t2 = m.spawn("count", (20,))
        CustomScheduler(m.interp).run_round_robin([t1, t2], quantum=3)
        assert t1.finished and t2.finished
        assert (t1.retval, t2.retval) == (10, 20)

    def test_random_schedule_completes_both(self):
        prog = counter_program()
        m = Machine(prog)
        t1 = m.spawn("count", (10,))
        t2 = m.spawn("count", (20,))
        CustomScheduler(m.interp).run_random([t1, t2], random.Random(0))
        assert t1.finished and t2.finished

    def test_step_budget_enforced(self):
        prog = counter_program()
        m = Machine(prog)
        t = m.spawn("count", (100_000,))
        sched = CustomScheduler(m.interp, max_steps=500)
        with pytest.raises(ExecutionLimitExceeded):
            sched.run_to_completion(t)
