"""Tests for scheduling-hint calculation — Algorithms 1 and 2 (§4.3)."""

import pytest

from repro.fuzzer.hints import (
    LD,
    ST,
    calculate_hints,
    filter_out,
    group_by_barriers,
    hints_for_group,
    shared_memory_locations,
)
from repro.kir.insn import Annot, BarrierKind
from repro.oemu.profiler import AccessEvent, BarrierEvent, SyscallProfile


def store(inst, addr, ts=0, annot=Annot.PLAIN):
    return AccessEvent(inst, addr, 8, True, ts, annot, "f")


def load(inst, addr, ts=0, annot=Annot.PLAIN):
    return AccessEvent(inst, addr, 8, False, ts, annot, "f")


def wmb(inst=0x900, ts=0):
    return BarrierEvent(inst, BarrierKind.WMB, ts)


def rmb(inst=0x901, ts=0):
    return BarrierEvent(inst, BarrierKind.RMB, ts)


def profile(events, name="sc"):
    return SyscallProfile(syscall=name, events=list(events))


class TestAlgorithm2Filter:
    def test_shared_requires_one_writer(self):
        a = [store(1, 0x100), load(2, 0x200)]
        b = [load(3, 0x100), load(4, 0x200)]
        shared = shared_memory_locations(a, b)
        assert 0x100 in shared       # W vs R -> shared
        assert 0x200 not in shared   # R vs R -> irrelevant

    def test_filter_drops_private_accesses(self):
        a = [store(1, 0x100), store(2, 0x300)]  # 0x300 never seen by b
        b = [load(3, 0x100)]
        fa, fb = filter_out(a, b)
        assert [e.inst_addr for e in fa] == [1]
        assert [e.inst_addr for e in fb] == [3]

    def test_filter_keeps_barriers(self):
        a = [store(1, 0x100), wmb(), store(2, 0x300)]
        b = [load(3, 0x100)]
        fa, _ = filter_out(a, b)
        assert any(isinstance(e, BarrierEvent) for e in fa)

    def test_partial_overlap_is_shared(self):
        a = [AccessEvent(1, 0x100, 8, True, 0, Annot.PLAIN, "f")]
        b = [AccessEvent(2, 0x104, 4, False, 0, Annot.PLAIN, "f")]
        assert shared_memory_locations(a, b)

    def test_write_write_conflicts_are_shared(self):
        a = [store(1, 0x100)]
        b = [store(2, 0x100)]
        assert 0x100 in shared_memory_locations(a, b)


class TestGrouping:
    def test_store_groups_split_at_wmb(self):
        events = [store(1, 0x100), wmb(), store(2, 0x108), store(3, 0x110)]
        groups = group_by_barriers(events, ST)
        assert [[e.inst_addr for e in g] for g in groups] == [[1], [2, 3]]

    def test_store_groups_ignore_rmb(self):
        events = [store(1, 0x100), rmb(), store(2, 0x108)]
        groups = group_by_barriers(events, ST)
        assert len(groups) == 1

    def test_load_groups_split_at_rmb(self):
        events = [load(1, 0x100), rmb(), load(2, 0x108)]
        groups = group_by_barriers(events, LD)
        assert len(groups) == 2

    def test_full_barrier_splits_both(self):
        events = [store(1, 0x100), BarrierEvent(9, BarrierKind.FULL, 0), load(2, 0x108)]
        assert len(group_by_barriers(events, ST)) == 2
        assert len(group_by_barriers(events, LD)) == 2

    def test_implicit_barriers_split_too(self):
        events = [
            load(1, 0x100, annot=Annot.ONCE),
            BarrierEvent(1, BarrierKind.RMB, 0, implicit=True),
            load(2, 0x108),
        ]
        assert len(group_by_barriers(events, LD)) == 2


class TestAlgorithm1Hints:
    def test_store_hints_are_shrinking_prefixes(self):
        group = [store(1, 0x100), store(2, 0x108), store(3, 0x110), store(4, 0x118)]
        hints = hints_for_group(group, group, ST, 0)
        assert [h.reorder for h in hints] == [(1, 2, 3), (1, 2), (1,)]
        assert all(h.sched_addr == 4 for h in hints)

    def test_load_hints_are_shrinking_suffixes(self):
        group = [load(1, 0x100), load(2, 0x108), load(3, 0x110)]
        hints = hints_for_group(group, group, LD, 1)
        assert [h.reorder for h in hints] == [(2, 3), (3,)]
        assert all(h.sched_addr == 1 for h in hints)

    def test_singleton_group_yields_nothing(self):
        group = [store(1, 0x100)]
        assert hints_for_group(group, group, ST, 0) == []

    def test_store_hints_count_only_delayable_stores(self):
        """Loads in a store group ride along but do not count (OEMU only
        delays stores), and pure-load prefixes are dropped."""
        group = [load(1, 0x100), store(2, 0x108), store(3, 0x110)]
        hints = hints_for_group(group, group, ST, 0)
        assert [h.nreorder for h in hints] == [1]  # just the store at 2

    def test_sched_hit_counts_dynamic_occurrence(self):
        # the same instruction executed twice; sched is its 2nd execution
        e1, e2 = store(5, 0x100, ts=1), store(5, 0x108, ts=2)
        group = [store(1, 0x110), e2]
        hints = hints_for_group(group, [e1, store(1, 0x110, ts=3), e2], ST, 0)
        assert hints[0].sched_addr == 5 and hints[0].sched_hit == 2

    def test_duplicate_reorder_sets_deduplicated(self):
        # Algorithm 1's pseudocode would emit the full prefix twice.
        group = [store(1, 0x100), store(2, 0x108)]
        hints = hints_for_group(group, group, ST, 0)
        assert len(hints) == len({h.reorder for h in hints})


class TestCalculateHints:
    def make_pair(self):
        # side 0: writer with two stores, no barrier; side 1: reader.
        p0 = profile([store(1, 0x100, 1), store(2, 0x108, 2)])
        p1 = profile([load(11, 0x100, 3), load(12, 0x108, 4)])
        return p0, p1

    def test_four_cases_covered(self):
        p0, p1 = self.make_pair()
        hints = calculate_hints(p0, p1)
        kinds = {(h.barrier_type, h.reorder_side) for h in hints}
        assert (ST, 0) in kinds   # writer's store test
        assert (LD, 1) in kinds   # reader's load test

    def test_sorted_by_reorder_count_descending(self):
        p0 = profile([store(i, 0x100 + 8 * i, i) for i in range(1, 5)])
        p1 = profile([load(10 + i, 0x100 + 8 * i, 10 + i) for i in range(1, 5)])
        hints = calculate_hints(p0, p1)
        counts = [h.nreorder for h in hints]
        assert counts == sorted(counts, reverse=True)

    def test_no_shared_memory_no_hints(self):
        p0 = profile([store(1, 0x100)])
        p1 = profile([load(2, 0x900)])
        assert calculate_hints(p0, p1) == []

    def test_barrier_protected_writer_yields_no_store_hints(self):
        p0 = profile([store(1, 0x100, 1), wmb(ts=2), store(2, 0x108, 3)])
        p1 = profile([load(11, 0x100, 4), load(12, 0x108, 5)])
        hints = calculate_hints(p0, p1)
        assert not [h for h in hints if h.barrier_type == ST and h.reorder_side == 0]

    def test_atomic_accesses_are_not_delayable(self):
        atomic = AccessEvent(7, 0x100, 8, True, 1, Annot.PLAIN, "f", atomic=True)
        p0 = profile([atomic, store(2, 0x108, 2)])
        p1 = profile([load(11, 0x100, 3), load(12, 0x108, 4)])
        store_hints = [
            h for h in calculate_hints(p0, p1)
            if h.barrier_type == ST and h.reorder_side == 0
        ]
        for h in store_hints:
            assert 7 not in h.reorder


class TestPrioritizeHints:
    def _hint(self, btype, sched, reorder, n):
        from repro.fuzzer.hints import SchedulingHint

        return SchedulingHint(
            barrier_type=btype, reorder_side=0, sched_addr=sched,
            sched_hit=1, reorder=tuple(reorder), nreorder=n,
        )

    def test_exercising_hints_move_first(self):
        from repro.fuzzer.hints import prioritize_hints

        # candidate pair (X=0x20, Y=0x24): delaying only X exercises it.
        cold = self._hint(ST, 0x50, (0x10, 0x14), 2)
        hot = self._hint(ST, 0x54, (0x20,), 1)
        out = prioritize_hints([cold, hot], {ST: {(0x20, 0x24)}, LD: set()})
        assert out == [hot, cold]

    def test_masking_both_members_ranks_below_exercising(self):
        from repro.fuzzer.hints import prioritize_hints

        # Delaying both X and Y preserves their relative order: the
        # candidate is masked, so the smaller exercising hint wins even
        # though the max-reorder heuristic put it second.
        masked = self._hint(ST, 0x50, (0x20, 0x24), 2)
        exercising = self._hint(ST, 0x50, (0x20,), 1)
        out = prioritize_hints(
            [masked, exercising], {ST: {(0x20, 0x24)}, LD: set()}
        )
        assert out == [exercising, masked]

    def test_masking_still_ranks_above_unmatched(self):
        from repro.fuzzer.hints import prioritize_hints

        masked = self._hint(ST, 0x50, (0x20, 0x24), 2)
        unmatched = self._hint(ST, 0x54, (0x10,), 1)
        out = prioritize_hints(
            [unmatched, masked], {ST: {(0x20, 0x24)}, LD: set()}
        )
        assert out == [masked, unmatched]

    def test_load_hint_moves_the_later_load(self):
        from repro.fuzzer.hints import prioritize_hints

        # For the load test the versioned (stale) load is the pair's Y.
        hot = self._hint(LD, 0x50, (0x24,), 1)     # Y stale, X fresh
        cold = self._hint(LD, 0x50, (0x20,), 2)    # moves X: not a tear
        out = prioritize_hints([cold, hot], {ST: set(), LD: {(0x20, 0x24)}})
        assert out == [hot, cold]

    def test_relative_order_preserved_within_tiers(self):
        from repro.fuzzer.hints import prioritize_hints

        h1 = self._hint(ST, 0x50, (0x10,), 3)
        h2 = self._hint(ST, 0x54, (0x20,), 2)
        h3 = self._hint(ST, 0x58, (0x30,), 1)
        out = prioritize_hints(
            [h1, h2, h3], {ST: {(0x20, 0x44), (0x30, 0x44)}, LD: set()}
        )
        assert out == [h2, h3, h1]

    def test_weight_map_orders_within_exercising_tier(self):
        from repro.fuzzer.hints import hint_static_rank, prioritize_hints

        # Both hints exercise a candidate (tier 0); the weight map from
        # candidate_weights breaks the tie in favour of the pair backed
        # by stronger race evidence, while plain sets leave input order.
        light = self._hint(ST, 0x50, (0x20,), 1)
        heavy = self._hint(ST, 0x54, (0x30,), 1)
        weighted = {ST: {(0x20, 0x44): 1, (0x30, 0x44): 11}, LD: {}}
        assert hint_static_rank(light, weighted) == (0, -1)
        assert hint_static_rank(heavy, weighted) == (0, -11)
        assert prioritize_hints([light, heavy], weighted) == [heavy, light]
        plain = {ST: {(0x20, 0x44), (0x30, 0x44)}, LD: set()}
        assert prioritize_hints([light, heavy], plain) == [light, heavy]

    def test_weight_map_tier_boundaries_unchanged(self):
        from repro.fuzzer.hints import hint_static_rank

        # Weights only refine tier 0 — masked and unmatched hints keep
        # their tiers no matter how heavy the pair's evidence is.
        weighted = {ST: {(0x20, 0x24): 13}, LD: {}}
        masked = self._hint(ST, 0x50, (0x20, 0x24), 2)
        unmatched = self._hint(ST, 0x54, (0x10,), 1)
        assert hint_static_rank(masked, weighted) == (1, 0)
        assert hint_static_rank(unmatched, weighted) == (2, 0)

    def test_kind_must_match(self):
        from repro.fuzzer.hints import prioritize_hints

        ld_hint = self._hint(LD, 0x50, (0x24,), 1)
        st_hint = self._hint(ST, 0x54, (0x20,), 1)
        # the pair is flagged for stores only: the LD hint is not promoted
        out = prioritize_hints(
            [ld_hint, st_hint], {ST: {(0x20, 0x24)}, LD: set()}
        )
        assert out == [st_hint, ld_hint]

    def test_empty_static_sets_are_identity(self):
        from repro.fuzzer.hints import prioritize_hints

        hints = [self._hint(ST, 0x50, (0x10,), 1)]
        assert prioritize_hints(hints, {}) == hints
        assert prioritize_hints(hints, {ST: set(), LD: set()}) == hints
