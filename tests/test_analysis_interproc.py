"""Tests for the KIRA v2 interprocedural engine.

Acceptance (ISSUE 7): the race engine flags every seeded bug — including
every lock-protected race — interprocedurally with zero executions, each
finding carrying a concrete syscall-entry witness path; schema v2
round-trips; the v1 reader path still works; SARIF output is stable.
"""

import json
import os

import pytest

from repro.analysis import (
    LintReport,
    analyze_races,
    build_callgraph,
    candidate_pairs,
    candidate_weights,
    lint_program,
    points_to,
    static_reordering_candidates,
    summarize_program,
    to_sarif,
)
from repro.analysis.lockset import analyze_locksets
from repro.analysis.pointsto import GlobalRegion, ParamSource
from repro.config import KernelConfig
from repro.kernel import bugs
from repro.kernel.kernel import KernelImage
from repro.kir import Builder, Program


@pytest.fixture(scope="module")
def image():
    return KernelImage(KernelConfig(instrumented=False))


@pytest.fixture(scope="module")
def report(image):
    return analyze_races(
        image.plain_program,
        owner=image.function_owner,
        roots=image.syscall_roots(),
        regions=image.global_regions(),
        candidates=static_reordering_candidates(image.plain_program),
    )


def finish(b):
    b.ret()
    return b.function()


# ---------------------------------------------------------------------------
# Acceptance: zero-execution coverage of the seeded bugs.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "bug_id", [b.bug_id for b in bugs.all_bugs()], ids=str
)
def test_every_seeded_bug_subsystem_has_a_race(bug_id, report):
    spec = bugs.get(bug_id)
    hits = [
        r for r in report.races() if r.subsystem == spec.subsystem
    ]
    assert hits, f"{bug_id}: no race candidate in {spec.subsystem}"


def test_lock_protected_race_is_classified_lock_race(report):
    # vlan: the writer holds vlan_lock, the readers are lockless — the
    # canonical one-sided-locking race, visible only interprocedurally.
    vlan = [r for r in report.races() if r.subsystem == "vlan"]
    lock_races = [r for r in vlan if r.classification == "lock-race"]
    assert lock_races, "vlan's one-sided locking not classified lock-race"
    race = lock_races[0]
    locked = race.writer.lockset or race.other.lockset
    assert any("vlan_lock" in l for l in locked)


def test_every_race_has_a_witness_path(report, image):
    roots = set(image.syscall_roots())
    for race in report.races():
        for side in (race.writer, race.other):
            assert side.witness, f"no witness for {side.function}"
            assert side.witness[0] in roots
            assert side.witness[-1] == side.function


def test_ranking_is_by_score_descending(report):
    scores = [r.score for r in report.races()]
    assert scores == sorted(scores, reverse=True)


def test_false_positives_confined_to_baseline(image, report):
    # Bug-free subsystems may have findings (ramfs readers really are
    # lockless) but they are bounded — the precision baseline.
    bug_subsystems = {b.subsystem for b in bugs.all_bugs()}
    fps = [r for r in report.races() if r.subsystem not in bug_subsystems]
    assert len(fps) <= 80


# ---------------------------------------------------------------------------
# Layer units: call graph, points-to, locksets, summaries.
# ---------------------------------------------------------------------------


class TestCallGraph:
    def test_direct_edges_exact(self):
        callee = finish(Builder("leaf"))
        b = Builder("root")
        b.call_void("leaf")
        program = Program([finish(b), callee])
        cg = build_callgraph(program, roots=["root"])
        assert [s.callee for s in cg.callees("root")] == ["leaf"]
        assert [s.caller for s in cg.callers("leaf")] == ["root"]
        assert cg.reachable() == {"root", "leaf"}

    def test_witness_paths_are_shortest(self, image):
        cg = build_callgraph(
            image.plain_program, roots=image.syscall_roots()
        )
        paths = cg.witness_paths()
        for root in image.syscall_roots():
            assert paths[root] == (root,)
        for func, path in paths.items():
            assert path[-1] == func
            # each step is a real call edge
            for caller, callee in zip(path, path[1:]):
                assert callee in {s.callee for s in cg.callees(caller)}

    def test_icall_targets_cover_boot_installed(self, image):
        # vtable-style dispatch: every function installed only at boot
        # (statically invisible) must still be reachable via ICall CHA.
        cg = build_callgraph(
            image.plain_program, roots=image.syscall_roots()
        )
        assert cg.reachable() == frozenset(
            image.plain_program.functions
        )


class TestPointsTo:
    def test_global_region_resolution(self, image):
        pt = points_to(
            image.plain_program,
            regions=image.global_regions(),
            callgraph=build_callgraph(
                image.plain_program, roots=image.syscall_roots()
            ),
        )
        func = image.plain_program.function("sys_vlan_add")
        regions = {
            loc.obj.name
            for i in range(len(func.insns))
            for loc in pt.access_locs("sys_vlan_add", i)
            if isinstance(loc.obj, GlobalRegion)
        }
        assert "vlan_group" in regions

    def test_fixpoint_converges(self, image):
        pt = points_to(
            image.plain_program,
            regions=image.global_regions(),
            callgraph=build_callgraph(
                image.plain_program, roots=image.syscall_roots()
            ),
        )
        assert pt.passes < 64

    def test_param_flows_into_callee(self):
        # callee dereferences its parameter; caller passes a global.
        cb = Builder("callee", ["p"])
        cb.store("p", 0, 1)
        callee = finish(cb)
        b = Builder("root")
        b.call_void("callee", 0x20_0000)
        program = Program([finish(b), callee])
        pt = points_to(
            program,
            regions={"g": (0x20_0000, 64)},
            callgraph=build_callgraph(program, roots=["root"]),
        )
        locs = pt.access_locs("callee", 0)
        assert any(
            isinstance(l.obj, GlobalRegion) and l.obj.name == "g"
            for l in locs
        )


class TestLocksets:
    def test_vlan_writer_holds_lock_readers_do_not(self, image):
        cg = build_callgraph(
            image.plain_program, roots=image.syscall_roots()
        )
        pt = points_to(
            image.plain_program,
            regions=image.global_regions(),
            callgraph=cg,
        )
        summaries = summarize_program(image.plain_program, pt, cg)
        ls = analyze_locksets(
            image.plain_program, summaries, cg,
            roots=image.syscall_roots(),
        )
        writer = image.plain_program.function("sys_vlan_add")
        held_any = set()
        for i in range(len(writer.insns)):
            held_any |= ls.held_at("sys_vlan_add", i)
        assert any("vlan_lock" in l for l in held_any)
        reader = image.plain_program.function("sys_vlan_get_device")
        for i in range(len(reader.insns)):
            assert not ls.held_at("sys_vlan_get_device", i)


# ---------------------------------------------------------------------------
# Report schema: v2 round-trip, v1 reader, SARIF.
# ---------------------------------------------------------------------------


class TestSchema:
    def test_v2_round_trip(self, image):
        report = lint_program(
            image.plain_program,
            image.function_owner,
            roots=image.syscall_roots(),
            regions=image.global_regions(),
        )
        payload = json.loads(json.dumps(report.to_json_dict()))
        loaded = LintReport.from_json_dict(payload)
        assert loaded.counts() == report.counts()
        assert [f.to_dict() for f in loaded.findings] == [
            f.to_dict() for f in report.findings
        ]
        assert [r.to_dict() for r in loaded.races] == [
            r.to_dict() for r in report.races
        ]

    def test_v1_reader_still_works(self):
        v1 = {
            "version": 1,
            "counts": {"use-before-def": 0, "missing-barrier": 1,
                       "lock-pairing": 0},
            "findings": [
                {"check": "missing-barrier", "kind": "st",
                 "subsystem": "vlan", "function": "sys_vlan_add",
                 "index": 3, "message": "stores may reorder"},
            ],
        }
        loaded = LintReport.from_json_dict(v1)
        assert len(loaded.findings) == 1
        assert loaded.findings[0].details is None
        assert loaded.races == []

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            LintReport.from_json_dict({"version": 3, "findings": []})

    def test_sarif_structure(self, image):
        report = lint_program(
            image.plain_program,
            image.function_owner,
            subsystems=["vlan"],
            roots=image.syscall_roots(),
            regions=image.global_regions(),
        )
        log = to_sarif(report)
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"missing-barrier", "race-candidate"} <= rule_ids
        assert len(run["results"]) == len(report.findings)
        for result in run["results"]:
            name = result["locations"][0]["logicalLocations"][0][
                "fullyQualifiedName"
            ]
            assert name.startswith("vlan/")

    def test_sarif_snapshot(self):
        # Committed snapshot over a tiny fixed program — catches any
        # unintended change to the SARIF shape.
        b = Builder("f")
        b.store(0x1000, 0, 1)
        b.store(0x2000, 0, 1)
        func = finish(b)
        program = Program([func])
        report = lint_program(program, races=False)
        log = to_sarif(report)
        path = os.path.join(
            os.path.dirname(__file__), "data", "sarif_snapshot.json"
        )
        want = json.loads(open(path).read())
        assert log == want

    def test_sarif_is_deterministic(self, image):
        report = lint_program(
            image.plain_program,
            image.function_owner,
            subsystems=["vlan"],
            roots=image.syscall_roots(),
            regions=image.global_regions(),
        )
        assert json.dumps(to_sarif(report), sort_keys=True) == json.dumps(
            to_sarif(report), sort_keys=True
        )


# ---------------------------------------------------------------------------
# Candidate weights feed the fuzzer's lockset-ranked hints.
# ---------------------------------------------------------------------------


class TestCandidateWeights:
    def test_every_candidate_pair_weighted(self, image, report):
        candidates = static_reordering_candidates(image.plain_program)
        weights = candidate_weights(report.races(), candidates)
        pairs = candidate_pairs(candidates)
        for kind, pair_set in pairs.items():
            assert set(weights[kind]) == set(pair_set)
            assert all(w >= 1 for w in weights[kind].values())

    def test_race_backed_candidates_outweigh_unbacked(self, image, report):
        candidates = static_reordering_candidates(image.plain_program)
        weights = candidate_weights(report.races(), candidates)
        all_weights = [
            w for kind in weights for w in weights[kind].values()
        ]
        assert max(all_weights) > 1
