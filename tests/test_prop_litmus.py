"""Property test over the litmus machinery itself.

For randomly generated publish/consume programs (N init stores, a flag
store, a guarded reader) the LKMM verdict is fully determined: the
"flag observed but some initialization missing" outcome is reachable
**iff** the writer lacks its store barrier or the reader lacks its load
barrier.  OEMU's exhaustively enumerated behaviour must agree for every
generated program — a randomized version of §2.2's Figure 1 analysis.
"""

from hypothesis import given, settings, strategies as st

from repro.kir import Builder, Program
from repro.litmus.programs import LitmusTest
from repro.litmus.runner import LitmusRunner
from repro.mem.memory import DATA_BASE

FLAG = DATA_BASE + 0x200
SLOTS = [DATA_BASE + 0x208 + 8 * i for i in range(3)]


def publish_consume(n_slots: int, wmb: bool, rmb: bool) -> LitmusTest:
    """Writer initializes ``n_slots`` values then raises the flag;
    reader checks the flag, then reads every slot.  Returns 1 iff the
    flag was seen with any slot still uninitialized (the OOO outcome)."""
    w = Builder("writer")
    for slot in SLOTS[:n_slots]:
        w.store(slot, 0, 1)
    if wmb:
        w.wmb()
    w.store(FLAG, 0, 1)
    w.ret(0)

    r = Builder("reader")
    flag = r.load(FLAG, 0)
    not_ready = r.label()
    r.beq(flag, 0, not_ready)
    if rmb:
        r.rmb()
    r.mov(n_slots, dst="total")
    for slot in SLOTS[:n_slots]:
        v = r.load(slot, 0)
        r.sub("total", v, dst="total")
    bug = r.label()
    r.bne("total", 0, bug)
    r.ret(0)   # all initialized: fine
    r.bind(bug)
    r.ret(1)   # OOO outcome: flag up, init missing
    r.bind(not_ready)
    r.ret(0)

    protected = wmb and rmb
    return LitmusTest(
        name=f"pub/consume(n={n_slots},wmb={int(wmb)},rmb={int(rmb)})",
        functions=(w.function(), r.function()),
        sc_outcomes=frozenset({(0, 0)}),
        weak_outcomes=frozenset() if protected else frozenset({(0, 1)}),
        forbidden=frozenset({(0, 1)}) if protected else frozenset(),
    )


class TestPublishConsumeFamily:
    @given(
        st.integers(min_value=1, max_value=2),
        st.booleans(),
        st.booleans(),
    )
    @settings(max_examples=12, deadline=None)
    def test_ooo_outcome_reachable_iff_a_barrier_is_missing(self, n, wmb, rmb):
        test = publish_consume(n, wmb, rmb)
        verdict = LitmusRunner(test).check()
        assert verdict.ok, verdict.render()
        reachable = (0, 1) in verdict.weak_observed
        assert reachable == (not (wmb and rmb))

    def test_interleaving_alone_never_reaches_it(self):
        """Even fully unprotected, the OOO outcome needs reordering —
        the §1 argument for why interleaving-only tools cannot see it."""
        verdict = LitmusRunner(publish_consume(2, False, False)).check()
        assert (0, 1) not in verdict.sc_observed
        assert (0, 1) in verdict.weak_observed
