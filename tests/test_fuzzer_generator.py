"""Tests for STI generation and mutation (paper §4.2)."""

import random

import pytest

from repro.fuzzer.generator import MAX_STI_LEN, InputGenerator
from repro.fuzzer.sti import Call, ResourceRef, STI
from repro.fuzzer.syzlang import parse
from repro.fuzzer.templates import templates

DESC = """
socket() fd
bind(fd fd, len flags[16,32])
send(fd fd, n int[0:7])
standalone()
"""


@pytest.fixture()
def gen():
    return InputGenerator(parse(DESC), random.Random(42))


def resource_args_valid(generator, sti: STI) -> bool:
    """Every ResourceRef must point at an earlier call producing the
    right resource class."""
    for idx, call in enumerate(sti.calls):
        template = generator.by_name[call.name]
        for arg, arg_t in zip(call.args, template.args):
            if isinstance(arg, ResourceRef):
                if not (0 <= arg.index < idx):
                    return False
                producer = generator.by_name[sti.calls[arg.index].name]
                if producer.produces != arg_t.resource:
                    return False
    return True


class TestGeneration:
    def test_generated_inputs_are_valid(self, gen):
        for _ in range(100):
            sti = gen.generate()
            assert 1 <= len(sti) <= MAX_STI_LEN
            assert resource_args_valid(gen, sti)

    def test_dependencies_satisfied_by_prepending_producers(self, gen):
        """A consumer without a producer gets one inserted (Syzkaller's
        dependency-satisfying behaviour)."""
        saw_ref = False
        for _ in range(200):
            sti = gen.generate()
            for idx, call in enumerate(sti.calls):
                for arg in call.args:
                    if isinstance(arg, ResourceRef):
                        saw_ref = True
                        assert sti.calls[arg.index].name == "socket"
        assert saw_ref

    def test_deterministic_given_seed(self):
        a = InputGenerator(parse(DESC), random.Random(7))
        b = InputGenerator(parse(DESC), random.Random(7))
        assert [a.generate() for _ in range(20)] == [b.generate() for _ in range(20)]

    def test_flags_and_ints_within_spec(self, gen):
        for _ in range(100):
            sti = gen.generate()
            for call in sti.calls:
                template = gen.by_name[call.name]
                for arg, arg_t in zip(call.args, template.args):
                    if arg_t.kind == "flags":
                        assert arg in arg_t.values
                    elif arg_t.kind == "int":
                        assert arg_t.lo <= arg <= arg_t.hi


class TestMutation:
    def test_mutations_stay_valid(self, gen):
        sti = gen.generate(3)
        for _ in range(200):
            sti = gen.mutate(sti)
            assert 1 <= len(sti) <= MAX_STI_LEN
            assert resource_args_valid(gen, sti)

    def test_insert_shifts_refs(self, gen):
        sti = STI((Call("socket"), Call("send", (ResourceRef(0), 3))))
        for _ in range(50):
            new = gen._mutate_insert(sti)
            if new is None:
                continue
            assert resource_args_valid(gen, new)

    def test_remove_degrades_dangling_refs(self, gen):
        sti = STI((Call("socket"), Call("send", (ResourceRef(0), 3))))
        for _ in range(50):
            new = gen._mutate_remove(sti)
            if new is not None:
                assert resource_args_valid(gen, new)

    def test_real_templates_generate_runnable_inputs(self):
        """Generated STIs against the real kernel never crash
        single-threaded (seeded bugs are concurrency-only)."""
        from repro.config import KernelConfig
        from repro.fuzzer.sti import profile_sti
        from repro.kernel.kernel import KernelImage

        image = KernelImage(KernelConfig())
        gen = InputGenerator(templates(), random.Random(3))
        for _ in range(25):
            result = profile_sti(image, gen.generate())
            assert result.crash is None, result.crash.title
