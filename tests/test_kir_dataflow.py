"""Tests for the generic dataflow engine — backward direction + liveness.

The forward half of the engine is exercised indirectly by the reaching-
definitions and barrier analyses; this file pins down the properties the
KIRA v2 work leans on: backward flow, set-union meet, fixpoint
termination on looping and irreducible CFGs, the edge-transfer hook, and
that adding the hook didn't change forward results.
"""

import pytest

from repro.kir import Builder, Program
from repro.kir.cfg import CFG
from repro.kir.dataflow import (
    BACKWARD,
    FORWARD,
    DataflowProblem,
    LivenessProblem,
    SetUnionProblem,
    live_out_sets,
    live_registers,
    solve,
)

A, B = 0x1000, 0x2000


def finish(b):
    b.ret()
    return b.function()


class TestLivenessDirection:
    def test_straight_line_use_then_def(self):
        # r = load A; store B, r — r is live-out of the load, dead after
        # the store consumes it.
        b = Builder("f")
        r = b.load(A)
        b.store(B, 0, r)
        func = finish(b)
        live = live_out_sets(func)
        assert r.name in live[0]
        assert r.name not in live[1]

    def test_redefinition_kills_liveness(self):
        b = Builder("f")
        r = b.load(A)
        b.load(B, dst=r)      # overwrites r before any use
        b.store(B, 0, r)
        func = finish(b)
        live = live_out_sets(func)
        # after insn 0 the original value is dead (insn 1 redefines it);
        # the *register name* is still live because insn 2 reads it —
        # liveness is per-name, which is exactly what the engine computes
        assert r.name in live[1]

    def test_unused_load_result_is_dead(self):
        b = Builder("f")
        r = b.load(A)
        b.store(B, 0, 7)
        func = finish(b)
        live = live_out_sets(func)
        assert r.name not in live[0]

    def test_param_used_on_one_branch_is_live_at_entry(self):
        b = Builder("f", ["p"])
        skip = b.label("skip")
        b.beq("p", 0, skip)
        b.store(A, 0, "p")
        b.bind(skip)
        func = finish(b)
        result = live_registers(func)
        assert "p" in result.block_in[0] or "p" in result.block_out[0]
        # liveness is the union over paths: live-out of the branch
        # includes p (the store path reads it)
        assert "p" in live_out_sets(func)[0]

    def test_backward_boundary_is_exit(self):
        # nothing is live after the final ret
        b = Builder("f", ["p"])
        b.store(A, 0, "p")
        func = finish(b)
        live = live_out_sets(func)
        assert live[len(func.insns) - 1] == frozenset()


class TestFixpointTermination:
    def _loop_func(self):
        # while (load A) { r = load B; store A, r }
        b = Builder("f")
        head = b.label("head")
        out = b.label("out")
        b.bind(head)
        c = b.load(A)
        b.beq(c, 0, out)
        r = b.load(B)
        b.store(A, 0, r)
        b.jmp(head)
        b.bind(out)
        return finish(b), r

    def test_loop_converges_backward(self):
        func, r = self._loop_func()
        result = live_registers(func)
        assert result.iterations < 50
        # r is consumed by the store inside the loop
        live = live_out_sets(func)
        assert r.name in live[2]

    def test_loop_converges_forward(self):
        func, _ = self._loop_func()

        class Collect(SetUnionProblem):
            direction = FORWARD

            def transfer(self, insn, index, fact):
                return fact | {index}

        result = solve(CFG.build(func), Collect())
        assert result.iterations < 50
        # the loop body's facts reach the loop head via the back edge
        assert 3 in result.block_in[result.cfg.block_of[0]]

    def test_irreducible_cfg_converges(self):
        # two blocks jumping into each other's middle, entered from both
        # sides of a branch — no single loop header.
        b = Builder("f", ["p"])
        l1 = b.label("l1")
        l2 = b.label("l2")
        out = b.label("out")
        b.beq("p", 0, l2)
        b.bind(l1)
        c1 = b.load(A)
        b.beq(c1, 0, out)
        b.bind(l2)
        c2 = b.load(B)
        b.bne(c2, 0, l1)
        b.bind(out)
        func = finish(b)
        backward = live_registers(func)
        assert backward.iterations < 100

        class Collect(SetUnionProblem):
            direction = FORWARD

            def transfer(self, insn, index, fact):
                return fact | {index}

        forward = solve(CFG.build(func), Collect())
        assert forward.iterations < 100
        # the entry branch's fact reaches the exit block
        exit_in = forward.block_in[forward.cfg.block_of[len(func.insns) - 1]]
        assert 0 in exit_in


class TestEdgeTransferHook:
    def test_default_edge_transfer_is_identity(self):
        b = Builder("f", ["p"])
        skip = b.label("skip")
        b.beq("p", 0, skip)
        b.store(A, 0, 1)
        b.bind(skip)
        func = finish(b)

        class Plain(SetUnionProblem):
            direction = FORWARD

            def transfer(self, insn, index, fact):
                return fact | {index}

        class WithIdentityEdge(Plain):
            def edge_transfer(self, pred, succ, fact):
                return fact

        cfg = CFG.build(func)
        r1 = solve(cfg, Plain())
        r2 = solve(cfg, WithIdentityEdge())
        assert r1.block_in == r2.block_in
        assert r1.block_out == r2.block_out

    def test_edge_transfer_sees_program_order_edges(self):
        # Record the (pred, succ) block pairs the engine hands the hook;
        # they must be program-order CFG edges in both directions.
        b = Builder("f", ["p"])
        skip = b.label("skip")
        b.beq("p", 0, skip)
        b.store(A, 0, 1)
        b.bind(skip)
        func = finish(b)
        cfg = CFG.build(func)
        true_edges = {
            (p.index, s)
            for p in cfg.blocks
            for s in p.succs
        }

        seen = set()

        class Spy(SetUnionProblem):
            def transfer(self, insn, index, fact):
                return fact

            def edge_transfer(self, pred, succ, fact):
                seen.add((pred.index, succ.index))
                return fact

        fwd = Spy()
        fwd.direction = FORWARD
        solve(cfg, fwd)
        assert seen <= true_edges and seen

        seen.clear()
        bwd = Spy()
        bwd.direction = BACKWARD
        solve(cfg, bwd)
        assert seen <= true_edges and seen

    def test_duck_typed_problem_without_hook_accepted(self):
        # Pre-hook problems (plain objects, no DataflowProblem base) must
        # still solve — the engine treats a missing edge_transfer as
        # identity.
        b = Builder("f")
        b.load(A)
        func = finish(b)

        class Legacy:
            direction = FORWARD

            def boundary(self):
                return frozenset()

            def top(self):
                return frozenset()

            def join(self, a, b):
                return a | b

            def transfer(self, insn, index, fact):
                return fact | {index}

        result = solve(CFG.build(func), Legacy())
        assert 0 in result.block_out[0]


class TestWholeKernelLiveness:
    def test_liveness_terminates_on_every_kernel_function(self):
        from repro.config import KernelConfig
        from repro.kernel.kernel import KernelImage

        image = KernelImage(KernelConfig(instrumented=False))
        for func in image.plain_program.functions.values():
            result = live_registers(func)
            assert result.iterations < 10 * max(1, len(func.insns))
