"""Tests for the paged int-bitmap CoverageMap (the campaign wire format).

The map replaced pickled address sets in every inter-process coverage
exchange — worker messages, shard results, checkpoints — so beyond the
container basics the tests pin the two protocol identities the
supervisor relies on:

* union/merge never lose or invent addresses (checked against the set
  algebra they replaced), and
* ``since.union(full.delta(since)) == since.union(full)`` — the delta a
  worker ships is exactly the missing bits, so folding deltas at the
  supervisor reconstructs the worker's full map.
"""

import random

import pytest

from repro.fuzzer.kcov import CoverageMap

# Address sets shaped like the things campaigns actually produce: dense
# instruction runs, page-boundary stragglers, and a tiny sparse set.
CASES = {
    "empty": frozenset(),
    "single": frozenset({0x40c000}),
    "small": frozenset({1, 2, 0x100}),
    "block": frozenset(range(0x40c000, 0x40c200, 4)),
    "page-straddle": frozenset(range(8190, 8195)),
    "sparse": frozenset({0, 8191, 8192, 1 << 20, (1 << 40) + 7}),
}


def rand_addrs(rng, n, span=1 << 20):
    return frozenset(rng.randrange(0, span) for _ in range(n))


class TestConstruction:
    @pytest.mark.parametrize("name", sorted(CASES))
    def test_from_addrs_roundtrips_addresses(self, name):
        addrs = CASES[name]
        m = CoverageMap.from_addrs(addrs)
        assert frozenset(m.addrs) == addrs
        assert len(m) == len(addrs)
        assert bool(m) == bool(addrs)

    def test_covers(self):
        m = CoverageMap.from_addrs({5, 8192})
        assert m.covers(5) and m.covers(8192)
        assert not m.covers(6) and not m.covers(8193)

    def test_rejects_negative_addresses(self):
        with pytest.raises(ValueError):
            CoverageMap.from_addrs({-1})

    def test_copy_is_independent(self):
        m = CoverageMap.from_addrs({1, 2})
        c = m.copy()
        c.merge({3})
        assert len(m) == 2 and len(c) == 3

    def test_equality_and_hash(self):
        a = CoverageMap.from_addrs({1, 8192})
        b = CoverageMap.from_addrs({8192, 1})
        assert a == b and hash(a) == hash(b)
        assert a != CoverageMap.from_addrs({1})


class TestMerge:
    def test_merge_returns_new_bit_count(self):
        m = CoverageMap.from_addrs({1, 2})
        assert m.merge({2, 3, 4}) == 2
        assert m.merge({1, 2}) == 0
        assert len(m) == 4

    def test_merge_accepts_map_and_iterable(self):
        m = CoverageMap()
        m.merge(CoverageMap.from_addrs({1}))
        m.merge([2, 3])
        assert frozenset(m.addrs) == {1, 2, 3}

    def test_union_is_set_union(self):
        rng = random.Random(7)
        for _ in range(20):
            xs, ys = rand_addrs(rng, 200), rand_addrs(rng, 200)
            u = CoverageMap.from_addrs(xs).union(CoverageMap.from_addrs(ys))
            assert frozenset(u.addrs) == xs | ys
            assert len(u) == len(xs | ys)

    def test_union_leaves_operands_untouched(self):
        a, b = CoverageMap.from_addrs({1}), CoverageMap.from_addrs({2})
        a.union(b)
        assert len(a) == 1 and len(b) == 1


class TestDelta:
    def test_delta_is_set_difference(self):
        rng = random.Random(11)
        for _ in range(20):
            xs, ys = rand_addrs(rng, 300), rand_addrs(rng, 300)
            full = CoverageMap.from_addrs(xs | ys)
            since = CoverageMap.from_addrs(ys)
            assert frozenset(full.delta(since).addrs) == xs - ys

    def test_delta_fold_reconstructs_full_map(self):
        """The worker wire protocol: ship delta, fold at the supervisor."""
        rng = random.Random(13)
        full, sent, acc = CoverageMap(), CoverageMap(), CoverageMap()
        for _ in range(10):
            full.merge(rand_addrs(rng, 100))
            d = full.delta(sent)
            acc.merge(CoverageMap.from_bytes(d.to_bytes()))
            sent = sent.union(d)
        assert acc == full and sent == full

    def test_delta_of_equal_maps_is_empty(self):
        m = CoverageMap.from_addrs({1, 2, 3})
        d = m.delta(m.copy())
        assert not d and len(d) == 0


class TestWireFormat:
    @pytest.mark.parametrize("name", sorted(CASES))
    def test_bytes_roundtrip(self, name):
        m = CoverageMap.from_addrs(CASES[name])
        assert CoverageMap.from_bytes(m.to_bytes()) == m

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_hex_roundtrip(self, name):
        m = CoverageMap.from_addrs(CASES[name])
        assert CoverageMap.from_hex(m.to_hex()) == m

    def test_random_roundtrip_property(self):
        rng = random.Random(17)
        for _ in range(50):
            addrs = rand_addrs(rng, rng.randrange(0, 400), span=1 << 30)
            m = CoverageMap.from_addrs(addrs)
            back = CoverageMap.from_bytes(m.to_bytes())
            assert frozenset(back.addrs) == addrs

    def test_wire_form_is_canonical(self):
        """Equal maps serialize identically however they were built."""
        a = CoverageMap.from_addrs({1, 8192, 70000})
        b = CoverageMap()
        b.merge({70000})
        b.merge({8192})
        b.merge({1})
        assert a.to_bytes() == b.to_bytes()

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            CoverageMap.from_bytes(b"not a coverage map")
