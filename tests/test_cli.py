"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    @pytest.mark.parametrize(
        "argv",
        [
            ["fuzz", "--iterations", "3", "--seed", "2"],
            ["table4"],
            ["lmbench", "--reps", "2"],
            ["litmus"],
            ["ofence"],
            ["bugs"],
            ["throughput", "--iterations", "2"],
            ["lint", "--subsystem", "vlan"],
            ["fuzz", "--iterations", "2", "--static-hints"],
            ["fuzz", "--shard-timeout", "5", "--checkpoint-dir", "d",
             "--checkpoint-every", "3", "--max-retries", "1"],
            ["fuzz", "--resume", "ckpt"],
            ["docs", "--check"],
            ["serve", "--port", "0", "--state-dir", "d",
             "--max-concurrent", "1"],
        ],
        ids=lambda a: a[0],
    )
    def test_commands_parse(self, argv):
        args = build_parser().parse_args(argv)
        assert callable(args.fn)


class TestExecution:
    def test_bugs_lists_registry(self, capsys):
        assert main(["bugs"]) == 0
        out = capsys.readouterr().out
        assert "t3_rds_xmit" in out and "t4_unix" in out

    def test_fuzz_small_campaign(self, capsys):
        assert main(["fuzz", "--iterations", "2", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "tests in" in out

    def test_fuzz_with_patches(self, capsys):
        code = main([
            "fuzz", "--iterations", "2", "--seed", "1",
            "--patch", "t4_watch_queue", "--patch", "t3_wq_find_first_bit",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "pipe_read" not in out  # the patched bug stayed silent

    def test_ofence_matches_paper(self, capsys):
        assert main(["ofence"]) == 0
        assert "8/11" in capsys.readouterr().out

    def test_lmbench_small(self, capsys):
        assert main(["lmbench", "--reps", "1"]) == 0
        assert "Overhead" in capsys.readouterr().out


class TestLint:
    def test_lint_finds_seeded_bugs_and_exits_1(self, capsys):
        # The built-in kernel is deliberately buggy: findings => exit 1.
        assert main(["lint"]) == 1
        out = capsys.readouterr().out
        assert "missing-barrier" in out

    def test_lint_subsystem_filter(self, capsys):
        assert main(["lint", "--subsystem", "vlan"]) == 1
        out = capsys.readouterr().out
        assert "sys_vlan_add" in out
        assert "sys_nbd_ioctl" not in out

    def test_lint_unknown_subsystem_is_usage_error(self, capsys):
        assert main(["lint", "--subsystem", "nope"]) == 2
        assert "unknown subsystem" in capsys.readouterr().err

    def test_lint_json_artifact(self, tmp_path, capsys):
        path = tmp_path / "lint.json"
        assert main(["lint", "--subsystem", "vlan", "--json", str(path)]) == 1
        import json

        payload = json.loads(path.read_text())
        assert payload["version"] == 2
        assert payload["counts"]["missing-barrier"] > 0
        assert payload["counts"]["race-candidate"] > 0
        assert all(f["subsystem"] == "vlan" for f in payload["findings"])

    def test_lint_explain_prints_witness(self, capsys):
        assert main(["lint", "--subsystem", "vlan", "--explain"]) == 1
        out = capsys.readouterr().out
        assert "race-candidate" in out
        assert "writer:" in out and "other:" in out
        assert " -> " in out or "sys_vlan" in out

    def test_lint_format_json_stdout(self, capsys):
        import json

        assert main(["lint", "--subsystem", "vlan",
                     "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 2

    def test_lint_format_sarif_stdout(self, capsys):
        import json

        assert main(["lint", "--subsystem", "vlan",
                     "--format", "sarif"]) == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["tool"]["driver"]["name"] == "kira"

    def test_lint_no_races_skips_engine(self, capsys):
        assert main(["lint", "--subsystem", "vlan", "--no-races"]) == 1
        out = capsys.readouterr().out
        assert "race-candidate" not in out

    def test_fuzz_static_hints_campaign(self, capsys):
        assert main(["fuzz", "--iterations", "2", "--seed", "1",
                     "--static-hints"]) == 0
        assert "tests in" in capsys.readouterr().out


class TestReplay:
    def test_replay_parses(self):
        args = build_parser().parse_args(["replay", "crash.json"])
        assert callable(args.fn) and args.artifact == "crash.json"

    def test_fuzz_artifacts_then_replay_ok(self, tmp_path, capsys):
        outdir = tmp_path / "artifacts"
        assert main(["fuzz", "--iterations", "4", "--seed", "1",
                     "--artifacts", str(outdir)]) == 0
        paths = sorted(outdir.glob("*.json"))
        assert paths, "fuzz --artifacts wrote nothing"
        capsys.readouterr()
        assert main(["replay", str(paths[0])]) == 0
        out = capsys.readouterr().out
        assert "replay OK" in out and "byte-for-byte" in out

    def test_replay_detects_forged_artifact(self, tmp_path, capsys):
        import json

        outdir = tmp_path / "artifacts"
        assert main(["fuzz", "--iterations", "4", "--seed", "1",
                     "--artifacts", str(outdir)]) == 0
        path = sorted(outdir.glob("*.json"))[0]
        payload = json.loads(path.read_text())
        payload["crash"]["oracle"] = "never-this-oracle"
        path.write_text(json.dumps(payload))
        capsys.readouterr()
        assert main(["replay", str(path)]) == 1
        assert "replay FAILED" in capsys.readouterr().out

    def test_replay_rejects_non_artifact(self, tmp_path, capsys):
        path = tmp_path / "nope.json"
        path.write_text('{"kind": "not-an-artifact"}')
        assert main(["replay", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_replay_garbage_json_exits_2(self, tmp_path, capsys):
        path = tmp_path / "garbage.json"
        path.write_text("{not json at all")
        assert main(["replay", str(path)]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "invalid JSON" in err

    def test_replay_future_schema_exits_2_with_hint(self, tmp_path, capsys):
        import json

        path = tmp_path / "future.json"
        path.write_text(json.dumps(
            {"kind": "ozz-crash-artifact", "version": 99}
        ))
        assert main(["replay", str(path)]) == 2
        err = capsys.readouterr().err
        assert "schema version 99" in err
        assert "newer than this tool" in err

    def test_replay_missing_file_is_io_error(self, tmp_path):
        assert main(["replay", str(tmp_path / "missing.json")]) == 2


class TestSupervisedFuzz:
    def test_fuzz_supervised_flags(self, capsys):
        assert main(["fuzz", "--iterations", "4", "--jobs", "2",
                     "--shard-timeout", "10"]) == 0
        out = capsys.readouterr().out
        assert "tests in" in out and "shard 1" in out

    def test_fuzz_checkpoint_then_resume(self, tmp_path, capsys):
        d = str(tmp_path / "ckpt")
        assert main(["fuzz", "--iterations", "4", "--jobs", "2",
                     "--checkpoint-dir", d]) == 0
        first = capsys.readouterr().out
        assert main(["fuzz", "--resume", d]) == 0
        resumed = capsys.readouterr().out
        # Both runs report the same crash summary (resume loads all
        # completed shards from disk instead of re-fuzzing).
        assert first.splitlines()[0] == resumed.splitlines()[0]

    def test_fuzz_resume_missing_checkpoint_is_error(self, tmp_path, capsys):
        assert main(["fuzz", "--resume", str(tmp_path / "nope")]) == 2
        assert "checkpoint" in capsys.readouterr().err

    def test_fuzz_injected_death_recovers(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_INJECT_FAULT", "die:1:1")
        assert main(["fuzz", "--iterations", "4", "--jobs", "2",
                     "--shard-timeout", "10"]) == 0
        out = capsys.readouterr().out
        assert "retry: shard 1" in out

    def test_fuzz_abandoned_shard_exits_1(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_INJECT_FAULT", "error:1:0:persistent")
        assert main(["fuzz", "--iterations", "4", "--jobs", "2",
                     "--max-retries", "0", "--shard-timeout", "10"]) == 1
        captured = capsys.readouterr()
        assert "FAILED: shard 1" in captured.err
        assert "tests in" in captured.out  # survivors still merged


def seeded_service_md(tmp_path):
    """A minimal service doc with the generated-section markers."""
    from repro.docsgen import REST_BEGIN, REST_END

    path = tmp_path / "service.md"
    path.write_text(f"# service\n\nprose\n\n{REST_BEGIN}\n{REST_END}\n\nmore\n")
    return str(path)


class TestDocs:
    def test_docs_writes_and_checks(self, tmp_path, capsys):
        path = str(tmp_path / "cli.md")
        svc = seeded_service_md(tmp_path)
        assert main(["docs", "--out", path, "--service-out", svc]) == 0
        assert main(["docs", "--out", path, "--service-out", svc,
                     "--check"]) == 0
        text = open(path).read()
        assert "repro fuzz" in text and "--resume" in text
        assert "repro serve" in text

    def test_docs_fills_rest_section_between_markers(self, tmp_path):
        path = str(tmp_path / "cli.md")
        svc = seeded_service_md(tmp_path)
        assert main(["docs", "--out", path, "--service-out", svc]) == 0
        text = open(svc).read()
        assert "GET /api/health" in text
        assert "POST /api/campaigns" in text
        # hand-written prose around the markers is preserved
        assert text.startswith("# service\n\nprose\n")
        assert text.rstrip().endswith("more")

    def test_docs_check_detects_staleness(self, tmp_path, capsys):
        path = str(tmp_path / "cli.md")
        svc = seeded_service_md(tmp_path)
        assert main(["docs", "--out", path, "--service-out", svc]) == 0
        with open(path, "a") as fh:
            fh.write("drift\n")
        capsys.readouterr()
        assert main(["docs", "--out", path, "--service-out", svc,
                     "--check"]) == 1
        assert "stale" in capsys.readouterr().err

    def test_docs_check_detects_stale_rest_section(self, tmp_path, capsys):
        path = str(tmp_path / "cli.md")
        svc = seeded_service_md(tmp_path)
        assert main(["docs", "--out", path, "--service-out", svc]) == 0
        # un-fill the generated section: markers intact, content gone
        seeded_service_md(tmp_path)
        capsys.readouterr()
        assert main(["docs", "--out", path, "--service-out", svc,
                     "--check"]) == 1
        assert "route table changed" in capsys.readouterr().err

    def test_docs_check_missing_markers(self, tmp_path, capsys):
        path = str(tmp_path / "cli.md")
        good = seeded_service_md(tmp_path)
        assert main(["docs", "--out", path, "--service-out", good]) == 0
        bad = tmp_path / "bad.md"
        bad.write_text("# no markers here\n")
        capsys.readouterr()
        assert main(["docs", "--out", path, "--service-out", str(bad),
                     "--check"]) == 1
        assert "markers" in capsys.readouterr().err

    def test_docs_check_missing_file(self, tmp_path, capsys):
        svc = seeded_service_md(tmp_path)
        assert main(["docs", "--out", str(tmp_path / "no.md"),
                     "--service-out", svc, "--check"]) == 1
        assert "does not exist" in capsys.readouterr().err

    def test_committed_docs_are_current(self):
        # The repo's docs/cli.md must match the live argparse tree and
        # docs/service.md's generated section must match the route
        # table; CI enforces this, but catch it locally first.
        import os

        from repro.docsgen import check_cli_markdown, check_service_markdown

        docs = os.path.join(os.path.dirname(__file__), "..", "docs")
        assert check_cli_markdown(
            build_parser(), os.path.join(docs, "cli.md")
        ) is None
        assert check_service_markdown(os.path.join(docs, "service.md")) is None
