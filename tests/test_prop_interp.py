"""Property tests: the interpreter's ALU/control flow vs a Python model."""

from hypothesis import given, settings, strategies as st

from repro.kir import Builder, Program
from repro.kir.insn import BinOpKind, MASK64, eval_binop
from repro.machine import Machine

ops = st.sampled_from(list(BinOpKind))
u64 = st.integers(min_value=0, max_value=MASK64)


class TestAluChain:
    @given(st.lists(st.tuples(ops, u64), min_size=1, max_size=10), u64)
    @settings(max_examples=60, deadline=None)
    def test_chained_binops_match_reference(self, chain, start):
        b = Builder("f", params=["x"])
        acc = b.reg("x")
        for op, operand in chain:
            acc = b.binop(op, acc, operand)
        b.ret(acc)
        m = Machine(Program([b.function()]), with_oemu=False)
        got = m.run("f", (start,))
        expected = start
        for op, operand in chain:
            expected = eval_binop(op, expected, operand)
        assert got == expected

    @given(u64, u64)
    @settings(max_examples=60, deadline=None)
    def test_branch_equivalence_with_python(self, a, bval):
        """max(a, b) via a KIR branch == Python max on u64."""
        b = Builder("umax", params=["a", "b"])
        take_b = b.label()
        b.blt("a", "b", take_b)
        b.ret("a")
        b.bind(take_b)
        b.ret("b")
        m = Machine(Program([b.function()]), with_oemu=False)
        assert m.run("umax", (a, bval)) == max(a, bval)

    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=30, deadline=None)
    def test_loop_iteration_count(self, n):
        b = Builder("count", params=["n"])
        b.mov(0, dst="i")
        top = b.label()
        done = b.label()
        b.bind(top)
        b.bge("i", "n", done)
        b.add("i", 1, dst="i")
        b.jmp(top)
        b.bind(done)
        b.ret("i")
        m = Machine(Program([b.function()]), with_oemu=False)
        assert m.run("count", (n,)) == n

    @given(st.lists(u64, min_size=0, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_call_stack_depth(self, args):
        """Nested calls return through the whole chain correctly."""
        funcs = []
        prev = None
        for i, value in enumerate(args):
            b = Builder(f"f{i}", params=["x"])
            v = b.binop(BinOpKind.XOR, "x", value)
            if prev is not None:
                v = b.call(prev, v)
            b.ret(v)
            funcs.append(b.function())
            prev = f"f{i}"
        if not funcs:
            return
        m = Machine(Program(funcs), with_oemu=False)
        got = m.run(prev, (0,))
        expected = 0
        for value in reversed(args):
            expected ^= value
        assert got == expected
