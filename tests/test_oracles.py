"""Tests for the bug-detecting oracles (paper §4.4's oracle list)."""

import pytest

from repro.errors import KernelCrash
from repro.kir import Builder, Program
from repro.kir.insn import Annot
from repro.machine import Machine
from repro.mem.memory import DATA_BASE, HEAP_BASE
from repro.oemu.profiler import AccessEvent
from repro.oracles.assertions import Assertions, ReturnValueOracle
from repro.oracles.kcsan import Kcsan
from repro.oracles.lockdep import Lockdep
from repro.oracles.report import (
    CrashReport,
    gpf_title,
    kasan_title,
    null_deref_title,
)


def machine_with(build, name="f", params=()):
    b = Builder(name, params=params)
    build(b)
    prog = Program([b.function()])
    return Machine(prog)


class TestFaultOracle:
    def test_null_read_title(self):
        m = machine_with(lambda b: (b.load(0, 8), b.ret()))
        with pytest.raises(KernelCrash) as e:
            m.run("f")
        assert e.value.report.title == "BUG: unable to handle kernel NULL pointer dereference in f"

    def test_null_write_is_kasan_style_title(self):
        """Table 3 #10's distinctive 'KASAN: null-ptr-deref Write' form."""
        m = machine_with(lambda b: (b.store(8, 0, 1), b.ret()))
        with pytest.raises(KernelCrash) as e:
            m.run("f")
        assert e.value.report.title == "KASAN: null-ptr-deref Write in f"

    def test_wild_pointer_is_gpf(self):
        m = machine_with(lambda b: (b.load(0xDEAD_BEEF_0000, 0), b.ret()))
        with pytest.raises(KernelCrash) as e:
            m.run("f")
        assert e.value.report.title == "general protection fault in f"

    def test_indirect_call_through_null(self):
        m = machine_with(lambda b: (b.icall(0), b.ret()))
        with pytest.raises(KernelCrash) as e:
            m.run("f")
        assert "NULL pointer dereference in f" in e.value.report.title

    def test_indirect_call_through_garbage(self):
        m = machine_with(lambda b: (b.icall(0x1234_5678), b.ret()))
        with pytest.raises(KernelCrash) as e:
            m.run("f")
        assert e.value.report.title == "general protection fault in f"

    def test_crash_names_innermost_function(self):
        """Crash titles name the function the access executed in."""
        inner = Builder("victim_fn", params=["p"])
        inner.load("p", 0)
        inner.ret()
        outer = Builder("entry")
        outer.call("victim_fn", 0)
        outer.ret()
        m = Machine(Program([inner.function(), outer.function()]))
        with pytest.raises(KernelCrash) as e:
            m.run("entry")
        assert "victim_fn" in e.value.report.title


class TestKasanOracle:
    def test_oob_read(self):
        m = machine_with(lambda b: (b.load("obj", 24), b.ret()), params=["obj"])
        obj = m.allocator.kmalloc(16)
        with pytest.raises(KernelCrash) as e:
            m.run("f", (obj,))
        assert e.value.report.title == "KASAN: slab-out-of-bounds Read in f"
        assert "first bad byte" in e.value.report.detail

    def test_oob_write(self):
        m = machine_with(lambda b: (b.store("obj", 24, 1), b.ret()), params=["obj"])
        obj = m.allocator.kmalloc(16)
        with pytest.raises(KernelCrash) as e:
            m.run("f", (obj,))
        assert "Write" in e.value.report.title

    def test_use_after_free(self):
        m = machine_with(lambda b: (b.load("obj", 0), b.ret()), params=["obj"])
        obj = m.allocator.kmalloc(16)
        m.allocator.kfree(obj)
        with pytest.raises(KernelCrash) as e:
            m.run("f", (obj,))
        assert e.value.report.title == "KASAN: use-after-free Read in f"
        assert "freed by thread" in e.value.report.detail

    def test_wild_heap_access(self):
        m = machine_with(lambda b: (b.load(HEAP_BASE + 0x8000, 0), b.ret()))
        with pytest.raises(KernelCrash) as e:
            m.run("f")
        assert "wild-memory-access" in e.value.report.title

    def test_disabled_kasan_lets_access_through(self):
        b = Builder("f", params=["obj"])
        v = b.load("obj", 24)
        b.ret(v)
        m = Machine(Program([b.function()]), kasan_enabled=False)
        obj = m.allocator.kmalloc(16)
        m.run("f", (obj,))  # no crash

    def test_report_includes_allocation_provenance(self):
        m = machine_with(lambda b: (b.load("obj", 20), b.ret()), params=["obj"])
        obj = m.allocator.kmalloc(16, site=0xABC, thread=7)
        with pytest.raises(KernelCrash) as e:
            m.run("f", (obj,))
        assert "allocated by thread 7" in e.value.report.detail


class TestLockdep:
    def test_abba_deadlock_detected(self):
        lockdep = Lockdep()
        lockdep.on_acquire(1, 0xA, "f")
        lockdep.on_acquire(1, 0xB, "f")  # order A -> B
        lockdep.on_release(1, 0xB, "f")
        lockdep.on_release(1, 0xA, "f")
        lockdep.on_acquire(2, 0xB, "g")
        with pytest.raises(KernelCrash) as e:
            lockdep.on_acquire(2, 0xA, "g")  # order B -> A: cycle
        assert "circular locking dependency" in e.value.report.title

    def test_consistent_order_is_fine(self):
        lockdep = Lockdep()
        for thread in (1, 2):
            lockdep.on_acquire(thread, 0xA, "f")
            lockdep.on_acquire(thread, 0xB, "f")
            lockdep.on_release(thread, 0xB, "f")
            lockdep.on_release(thread, 0xA, "f")

    def test_unbalanced_unlock(self):
        lockdep = Lockdep()
        with pytest.raises(KernelCrash) as e:
            lockdep.on_release(1, 0xA, "f")
        assert "bad unlock balance" in e.value.report.title

    def test_lock_held_at_syscall_exit(self):
        lockdep = Lockdep()
        lockdep.on_acquire(1, 0xA, "f")
        with pytest.raises(KernelCrash) as e:
            lockdep.on_syscall_exit(1, "f")
        assert "returning to user space" in e.value.report.title

    def test_disabled_lockdep_is_silent(self):
        lockdep = Lockdep(enabled=False)
        lockdep.on_release(1, 0xA, "f")
        lockdep.on_acquire(1, 0xB, "f")
        lockdep.on_syscall_exit(1, "f")


class TestAssertions:
    def test_bug_on(self):
        with pytest.raises(KernelCrash) as e:
            Assertions().bug_on(True, "sbitmap_queue_clear")
        assert e.value.report.title == "kernel BUG at sbitmap_queue_clear"

    def test_bug_on_false_is_silent(self):
        Assertions().bug_on(False, "f")

    def test_warn_on_returns_report(self):
        report = Assertions().warn_on(True, "f")
        assert report is not None and report.title == "WARNING in f"
        assert Assertions().warn_on(False, "f") is None


class TestReturnValueOracle:
    def test_registered_check_fires(self):
        oracle = ReturnValueOracle()
        oracle.register("sc", lambda rv: None if rv == 0 else "nonzero")
        oracle.on_return("sc", 0)
        with pytest.raises(KernelCrash) as e:
            oracle.on_return("sc", 5)
        assert "wrong return value from sc" in e.value.report.title

    def test_unregistered_syscall_ignored(self):
        ReturnValueOracle().on_return("other", 12345)


def ev(inst, addr, write, annot=Annot.PLAIN, func="f"):
    return AccessEvent(inst, addr, 8, write, 0, annot, func)


class TestKcsan:
    def test_plain_write_read_race(self):
        races = Kcsan().find_races([ev(1, 0x100, True)], [ev(2, 0x100, False)])
        assert len(races) == 1

    def test_read_read_is_not_a_race(self):
        assert not Kcsan().find_races([ev(1, 0x100, False)], [ev(2, 0x100, False)])

    def test_annotated_pair_is_exempt(self):
        races = Kcsan().find_races(
            [ev(1, 0x100, True, Annot.ONCE)], [ev(2, 0x100, False, Annot.ONCE)]
        )
        assert not races

    def test_disjoint_addresses_do_not_race(self):
        assert not Kcsan().find_races([ev(1, 0x100, True)], [ev(2, 0x108, False)])

    def test_model_covers_single_plain_access(self):
        assert Kcsan().can_see_reordering([ev(1, 0x100, True)])

    def test_model_misses_multi_access_reordering(self):
        assert not Kcsan().can_see_reordering(
            [ev(1, 0x100, True), ev(2, 0x108, True)]
        )

    def test_model_misses_annotated_window(self):
        assert not Kcsan().can_see_reordering([ev(1, 0x100, True, Annot.ONCE)])

    def test_model_misses_cross_function_window(self):
        window = [ev(1, 0x100, False, func="a"), ev(2, 0x108, False, func="b")]
        assert not Kcsan().can_see_reordering(window)


class TestCrashReport:
    def test_render_includes_ooo_context(self):
        report = CrashReport(
            title="T", oracle="fault", function="f", inst_addr=0x100,
            reordered_insns=(0x10, 0x20), hypothetical_barrier=0x30,
            barrier_test="store",
        )
        text = report.render()
        assert "hypothetical store barrier at 0x30" in text
        assert "0x10, 0x20" in text

    def test_title_helpers(self):
        assert null_deref_title("f", False).startswith("BUG:")
        assert null_deref_title("f", True).startswith("KASAN:")
        assert gpf_title("f") == "general protection fault in f"
        assert kasan_title("use-after-free", True, "f") == "KASAN: use-after-free Write in f"
