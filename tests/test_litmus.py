"""Tests for the litmus suite and the LKMM-compliance enumerator."""

import pytest

from repro.litmus import (
    LitmusRunner,
    coherence_rr,
    coherence_wr,
    dependent_loads,
    load_buffering,
    message_passing,
    message_passing_acqrel,
    standard_suite,
    store_buffering,
)


@pytest.fixture(scope="module")
def verdicts():
    return {t.name: LitmusRunner(t).check() for t in standard_suite()}


class TestSuiteCompliance:
    def test_every_test_passes(self, verdicts):
        for name, verdict in verdicts.items():
            assert verdict.ok, verdict.render()

    def test_no_forbidden_outcome_anywhere(self, verdicts):
        for verdict in verdicts.values():
            assert not verdict.forbidden_hit

    def test_sc_outcomes_exact(self, verdicts):
        for verdict in verdicts.values():
            assert verdict.sc_observed == verdict.test.sc_outcomes


class TestMessagePassing:
    """The Figure 1 shape at litmus granularity (§2.2's analysis)."""

    @pytest.mark.parametrize("wmb,rmb", [(False, False), (True, False), (False, True)])
    def test_any_missing_barrier_readmits_the_bug(self, verdicts, wmb, rmb):
        v = verdicts[f"MP(wmb={int(wmb)},rmb={int(rmb)})"]
        assert (0, 10) in v.weak_observed  # r1=1 ∧ r2=0

    def test_both_barriers_forbid_it(self, verdicts):
        v = verdicts["MP(wmb=1,rmb=1)"]
        assert (0, 10) not in v.weak_observed

    def test_acquire_release_also_forbids(self, verdicts):
        assert (0, 10) not in verdicts["MP(release/acquire)"].weak_observed

    def test_weak_outcome_needs_reordering(self, verdicts):
        """(0,10) is never reachable by interleaving alone."""
        v = verdicts["MP(wmb=0,rmb=0)"]
        assert (0, 10) not in v.sc_observed


class TestStoreBuffering:
    def test_relaxed_reaches_both_zero(self, verdicts):
        assert (0, 0) in verdicts["SB(mb=0)"].weak_observed

    def test_mb_forbids_both_zero(self, verdicts):
        assert (0, 0) not in verdicts["SB(mb=1)"].weak_observed

    def test_one_fence_is_not_enough(self, verdicts):
        assert (0, 0) in verdicts["SB(half-fenced)"].weak_observed


class TestOneSidedProtections:
    def test_write_once_does_not_order(self, verdicts):
        """The Figure 7 non-fix, at litmus granularity."""
        assert (0, 10) in verdicts["MP(ONCE-only)"].weak_observed

    def test_release_alone_leaves_the_reader_exposed(self, verdicts):
        assert (0, 10) in verdicts["MP(release-only)"].weak_observed


class TestScopeAndCoherence:
    def test_load_buffering_unreachable(self, verdicts):
        """Load-store reordering is out of OEMU's scope (paper §3)."""
        assert (1, 1) not in verdicts["LB"].weak_observed

    def test_corr_coherence(self, verdicts):
        """Two reads of one location never go backwards in time."""
        assert (0, 10) not in verdicts["CoRR"].weak_observed

    def test_cowr_own_store_visible(self, verdicts):
        assert (0, 0) not in verdicts["CoWR"].weak_observed

    def test_alpha_rule(self, verdicts):
        """Address-dependent loads reorder iff the first load is plain
        (LKMM Case 6 / 'AND THEN THERE WAS ALPHA')."""
        assert (0, 10) in verdicts["MP+addr-dep(read_once=0)"].weak_observed
        assert (0, 10) not in verdicts["MP+addr-dep(read_once=1)"].weak_observed


class TestRunnerMechanics:
    def test_run_single_schedule(self):
        test = store_buffering(False)
        runner = LitmusRunner(test)
        n1 = len(test.functions[0].insns)
        n2 = len(test.functions[1].insns)
        outcome = runner.run_schedule([0] * n1 + [1] * n2, None)
        assert outcome == (0, 1)  # t1 entirely before t2

    def test_infeasible_schedule_returns_none(self):
        test = store_buffering(False)
        runner = LitmusRunner(test)
        assert runner.run_schedule([0] * 50, None) is None

    def test_controls_enumeration_is_per_single_thread(self):
        """OZZ tests one hypothetical barrier (one thread's controls) at
        a time (§4.5)."""
        runner = LitmusRunner(store_buffering(False))
        for side in (0, 1):
            for controls in runner._controls_for_side(side):
                assert controls[0] == side
                assert controls[1] or controls[2]

    def test_verdict_render(self):
        verdict = LitmusRunner(coherence_wr()).check()
        text = verdict.render()
        assert "CoWR" in text and "OK" in text
