"""Unit tests for the memory substrate: memory, shadow, allocator, buffers."""

import pytest

from repro.mem.allocator import AllocatorViolation, QUARANTINE_DEPTH, SlabAllocator
from repro.mem.memory import (
    DATA_BASE,
    FaultKind,
    HEAP_BASE,
    Memory,
    MemoryFault,
)
from repro.mem.shadow import ShadowMemory, ShadowState
from repro.mem.store_buffer import VirtualStoreBuffer
from repro.mem.store_history import StoreHistory


class TestMemory:
    def test_little_endian_round_trip(self):
        mem = Memory()
        mem.store(DATA_BASE, 8, 0x0102030405060708)
        assert mem.read_bytes(DATA_BASE, 1) == b"\x08"
        assert mem.load(DATA_BASE, 8) == 0x0102030405060708

    def test_cross_page_access(self):
        mem = Memory()
        addr = DATA_BASE + 0xFFE  # straddles a page boundary
        mem.store(addr, 4, 0xAABBCCDD)
        assert mem.load(addr, 4) == 0xAABBCCDD

    def test_null_page_faults(self):
        mem = Memory()
        with pytest.raises(MemoryFault) as e:
            mem.load(8, 8)
        assert e.value.kind == FaultKind.NULL_DEREF

    def test_wild_address_is_gpf(self):
        mem = Memory()
        with pytest.raises(MemoryFault) as e:
            mem.store(0xDEAD_BEEF_0000, 8, 1)
        assert e.value.kind == FaultKind.GPF

    def test_percpu_regions_disjoint(self):
        mem = Memory(ncpus=4)
        bases = {mem.percpu_base(c) for c in range(4)}
        assert len(bases) == 4
        for base in bases:
            mem.store(base, 8, 7)  # all mapped


class TestShadow:
    def test_heap_defaults_unallocated(self):
        sh = ShadowMemory()
        assert sh.state_at(HEAP_BASE) == ShadowState.UNALLOCATED
        assert sh.first_bad_byte(HEAP_BASE, 8) == HEAP_BASE

    def test_non_heap_not_governed(self):
        sh = ShadowMemory()
        assert sh.first_bad_byte(DATA_BASE, 8) is None

    def test_poison_unpoison(self):
        sh = ShadowMemory()
        sh.set_state(HEAP_BASE, 16, ShadowState.ADDRESSABLE)
        assert sh.first_bad_byte(HEAP_BASE, 16) is None
        sh.set_state(HEAP_BASE + 8, 8, ShadowState.FREED)
        assert sh.first_bad_byte(HEAP_BASE, 16) == HEAP_BASE + 8


class TestAllocator:
    def make(self):
        mem = Memory()
        sh = ShadowMemory()
        return SlabAllocator(mem, sh), mem, sh

    def test_kzalloc_zeroes(self):
        alloc, mem, _ = self.make()
        addr = alloc.kzalloc(32)
        assert mem.read_bytes(addr, 32) == bytes(32)

    def test_object_addressable_redzone_poisoned(self):
        alloc, _, sh = self.make()
        addr = alloc.kmalloc(20)  # slot 32
        assert sh.first_bad_byte(addr, 20) is None
        assert sh.state_at(addr + 20) == ShadowState.REDZONE
        assert sh.state_at(addr + 32) == ShadowState.REDZONE

    def test_free_poisons_whole_slot(self):
        alloc, _, sh = self.make()
        addr = alloc.kmalloc(20)
        alloc.kfree(addr)
        assert sh.state_at(addr) == ShadowState.FREED

    def test_double_free_detected(self):
        alloc, _, _ = self.make()
        addr = alloc.kmalloc(16)
        alloc.kfree(addr)
        with pytest.raises(AllocatorViolation, match="double-free"):
            alloc.kfree(addr)

    def test_invalid_free_detected(self):
        alloc, _, _ = self.make()
        with pytest.raises(AllocatorViolation, match="invalid-free"):
            alloc.kfree(HEAP_BASE + 12345)

    def test_kfree_null_is_noop(self):
        alloc, _, _ = self.make()
        alloc.kfree(0)

    def test_quarantine_delays_reuse(self):
        alloc, _, _ = self.make()
        first = alloc.kmalloc(16)
        alloc.kfree(first)
        # Immediately reallocating must NOT reuse the quarantined slot.
        second = alloc.kmalloc(16)
        assert second != first

    def test_reuse_after_quarantine_drains(self):
        alloc, _, sh = self.make()
        first = alloc.kmalloc(16)
        alloc.kfree(first)
        others = [alloc.kmalloc(16) for _ in range(QUARANTINE_DEPTH + 1)]
        for addr in others:
            alloc.kfree(addr)  # pushes `first` out of the quarantine
        addrs = {alloc.kmalloc(16) for _ in range(QUARANTINE_DEPTH + 2)}
        assert first in addrs

    def test_find_object_covers_redzone(self):
        alloc, _, _ = self.make()
        addr = alloc.kmalloc(16)
        info = alloc.find_object(addr + 17)  # in the redzone
        assert info is not None and info.addr == addr


class TestStoreBuffer:
    def test_forwarding_latest_wins(self):
        buf = VirtualStoreBuffer()
        buf.delay(1, 0x1000, 8, (111).to_bytes(8, "little"))
        buf.delay(2, 0x1000, 8, (222).to_bytes(8, "little"))
        out = buf.forward_overlay(0x1000, 8, bytes(8))
        assert int.from_bytes(out, "little") == 222

    def test_partial_overlap_byte_accurate(self):
        buf = VirtualStoreBuffer()
        buf.delay(1, 0x1002, 2, b"\xaa\xbb")
        base = bytes(range(8))
        out = buf.forward_overlay(0x1000, 8, base)
        assert out == bytes([0, 1, 0xAA, 0xBB, 4, 5, 6, 7])

    def test_flush_is_fifo(self):
        buf = VirtualStoreBuffer()
        buf.delay(1, 0x1000, 8, bytes(8))
        buf.delay(2, 0x2000, 8, bytes(8))
        order = []
        buf.flush(lambda e: order.append(e.inst_addr))
        assert order == [1, 2]
        assert len(buf) == 0

    def test_overlaps(self):
        buf = VirtualStoreBuffer()
        buf.delay(1, 0x1000, 8, bytes(8))
        assert buf.overlaps(0x1004, 8)
        assert not buf.overlaps(0x1008, 8)


class TestStoreHistory:
    def test_read_old_reconstructs_window_start(self):
        hist = StoreHistory()
        mem = {0x1000 + i: 0xFF for i in range(8)}
        # value was 0, then 1 at t=5, then 2 at t=9
        hist.record(5, 0x1000, 8, (0).to_bytes(8, "little"), (1).to_bytes(8, "little"), 1, 0)
        hist.record(9, 0x1000, 8, (1).to_bytes(8, "little"), (2).to_bytes(8, "little"), 1, 0)
        val, any_old = hist.read_old(0x1000, 8, window_start=3, current=lambda a: mem[a])
        assert any_old and int.from_bytes(val, "little") == 0
        val, any_old = hist.read_old(0x1000, 8, window_start=5, current=lambda a: mem[a])
        assert any_old and int.from_bytes(val, "little") == 1

    def test_no_in_window_write_reads_memory(self):
        hist = StoreHistory()
        hist.record(5, 0x1000, 8, bytes(8), (1).to_bytes(8, "little"), 1, 0)
        val, any_old = hist.read_old(0x1000, 8, window_start=7, current=lambda a: 0xAB)
        assert not any_old and val == bytes([0xAB] * 8)

    def test_writes_in_window_filters(self):
        hist = StoreHistory()
        hist.record(5, 0x1000, 8, bytes(8), bytes(8), 1, 100)
        hist.record(9, 0x2000, 8, bytes(8), bytes(8), 1, 200)
        recs = hist.writes_in_window(0x1000, 8, window_start=1)
        assert [r.inst_addr for r in recs] == [100]

    def test_capacity_bounded(self):
        hist = StoreHistory(max_entries=10)
        for i in range(25):
            hist.record(i, 0x1000, 1, b"\x00", b"\x01", 1, i)
        assert len(hist) <= 10
