"""Functional depth tests per simulated-kernel subsystem.

The bug matrix (test_kernel_bugs) covers the seeded races; these tests
cover each subsystem's *normal* semantics — the part that must be
correct for the races to mean anything.
"""

import pytest

from repro.config import KernelConfig
from repro.kernel import Kernel, KernelImage


@pytest.fixture(scope="module")
def image():
    return KernelImage(KernelConfig())


@pytest.fixture()
def kernel(image):
    return Kernel(image)


class TestWatchQueue:
    def test_post_then_read_round_trip(self, kernel):
        kernel.run_syscall("watch_queue_create")
        kernel.run_syscall("watch_queue_post", (42,))
        assert kernel.run_syscall("pipe_read") == 42

    def test_read_empty_pipe(self, kernel):
        kernel.run_syscall("watch_queue_create")
        assert kernel.run_syscall("pipe_read") == 0

    def test_ring_wraps_around(self, kernel):
        from repro.kernel.subsystems.watch_queue import RING_SLOTS

        kernel.run_syscall("watch_queue_create")
        for i in range(RING_SLOTS + 3):
            kernel.run_syscall("watch_queue_post", (i + 1,))
            assert kernel.run_syscall("pipe_read") == i + 1

    def test_set_size_enables_bitmap_scan(self, kernel):
        kernel.run_syscall("watch_queue_create")
        kernel.run_syscall("watch_queue_set_size", (8,))
        kernel.run_syscall("watch_queue_post", (5,))  # scans the bitmap, no crash


class TestRds:
    def test_try_lock_excludes(self, kernel):
        from repro.kernel.subsystems.rds import IN_XMIT_BIT, RDS_CONN

        conn = kernel.glob("rds_conn")
        kernel.poke(conn + RDS_CONN.cp_flags, 1 << IN_XMIT_BIT)  # lock held
        assert kernel.run_syscall("rds_sendmsg", (1,)) == 0  # busy
        kernel.poke(conn + RDS_CONN.cp_flags, 0)
        assert kernel.run_syscall("rds_sendmsg", (1,)) == 1

    def test_shrink_updates_buffer(self, kernel):
        from repro.kernel.subsystems.rds import RDS_CONN, SHRUNK_BUF_LEN

        kernel.run_syscall("rds_sendmsg", (1,))
        conn = kernel.glob("rds_conn")
        assert kernel.peek(conn + RDS_CONN.len) == SHRUNK_BUF_LEN


class TestTls:
    def test_dispatch_through_proto_tables(self, kernel):
        fd = kernel.run_syscall("socket")
        # Before tls_init, setsockopt goes to the default handler.
        assert kernel.run_syscall("setsockopt", (fd,)) == 0
        kernel.run_syscall("tls_init", (fd,))
        # Now it dispatches into tls_setsockopt via the tls proto table.
        kernel.run_syscall("setsockopt", (fd,))

    def test_crypto_round_trip(self, kernel):
        fd = kernel.run_syscall("socket")
        kernel.run_syscall("tls_init", (fd,))
        kernel.run_syscall("tls_set_crypto", (fd, 99))
        assert kernel.run_syscall("tls_getsockopt", (fd,)) == 99

    def test_err_abort_reports_reason(self, kernel):
        from repro.kernel.subsystems.tls import ERR_REASON

        fd = kernel.run_syscall("socket")
        assert kernel.run_syscall("tls_getsockopt_err", (fd,)) == 0
        kernel.run_syscall("tls_err_abort", (fd,))
        assert kernel.run_syscall("tls_getsockopt_err", (fd,)) == 1000 + ERR_REASON


class TestXsk:
    def test_bind_publishes_rings(self, kernel):
        fd = kernel.run_syscall("xsk_socket")
        assert kernel.run_syscall("xsk_poll", (fd,)) == 0  # not bound yet
        kernel.run_syscall("xsk_bind", (fd,))
        kernel.run_syscall("xsk_poll", (fd,))
        kernel.run_syscall("xsk_sendmsg", (fd,))

    def test_activate_unbind_cycle(self, kernel):
        fd = kernel.run_syscall("xsk_socket")
        kernel.run_syscall("xsk_activate", (fd,))
        kernel.run_syscall("xsk_state_xmit", (fd,))
        kernel.run_syscall("xsk_unbind", (fd,))
        assert kernel.run_syscall("xsk_state_xmit", (fd,)) == 0  # guard bails


class TestRamfs:
    def test_write_read_round_trip(self, kernel):
        kernel.run_syscall("creat", (3,))
        fd = kernel.run_syscall("fs_open", (3,))
        written = kernel.run_syscall("fs_write", (fd, 4))
        assert written == 32
        total = kernel.run_syscall("fs_read", (fd,))
        assert total == sum(range(0, 32, 8))
        kernel.run_syscall("fs_close", (fd,))

    def test_open_missing_file(self, kernel):
        assert kernel.run_syscall("fs_open", (6,)) == 0

    def test_unlink_frees_data(self, kernel):
        kernel.run_syscall("creat", (2,))
        live_before = kernel.allocator.live_bytes
        kernel.run_syscall("unlink", (2,))
        assert kernel.allocator.live_bytes < live_before

    def test_stat_reads_inode(self, kernel):
        kernel.run_syscall("creat", (1,))
        assert kernel.run_syscall("stat", (1,)) > 0


class TestCore:
    def test_fork_increments_pid(self, kernel):
        first = kernel.run_syscall("fork")
        second = kernel.run_syscall("fork")
        assert second == first + 1

    def test_pipe_and_unix_echo(self, kernel):
        assert kernel.run_syscall("pipe_lat", (123,)) == 123
        assert kernel.run_syscall("unix_lat", (99,)) == 99

    def test_mmap_allocates_and_releases(self, kernel):
        live = kernel.allocator.live_bytes
        kernel.run_syscall("mmap", (8,))
        assert kernel.allocator.live_bytes == live  # mapped then unmapped


class TestPercpu:
    def test_blocks_isolated_per_cpu(self, image):
        kernel = Kernel(image)
        t0 = kernel.spawn_syscall("blk_complete", (), cpu=0)
        kernel.interp.run(t0)
        kernel.finish_syscall(t0, "blk_complete")
        from repro.kernel.subsystems.sbitmap import SBQ_CLEARED_OFF

        cpu0 = kernel.memory.percpu_base(0) + SBQ_CLEARED_OFF
        cpu1 = kernel.memory.percpu_base(1) + SBQ_CLEARED_OFF
        assert kernel.peek(cpu0) == 1
        assert kernel.peek(cpu1) == 0

    def test_manual_modification_aliases_blocks(self):
        image = KernelImage(KernelConfig(sbitmap_manual_percpu=True))
        kernel = Kernel(image)
        t1 = kernel.spawn_syscall("blk_complete", (), cpu=1)
        kernel.interp.run(t1)
        kernel.finish_syscall(t1, "blk_complete")
        from repro.kernel.subsystems.sbitmap import SBQ_CLEARED_OFF

        assert kernel.peek(kernel.memory.percpu_base(0) + SBQ_CLEARED_OFF) == 1


class TestLocksInKernel:
    def test_spin_unlock_flushes_critical_section(self, image):
        """LKMM: unlock has release semantics — delayed stores commit."""
        from repro.kir.insn import Store

        kernel = Kernel(image)
        thread = kernel.spawn_syscall("vlan_add")
        func = kernel.program.function("sys_vlan_add")
        stores = [i for i in func.insns if isinstance(i, Store)]
        for s in stores:
            kernel.oemu.delay_store_at(thread.thread_id, s.addr)
        kernel.interp.run(thread)
        # The unlock (before ret) flushed everything:
        from repro.kernel.subsystems.vlan import VLAN_GROUP

        assert kernel.peek(kernel.glob("vlan_group") + VLAN_GROUP.count) == 1

    def test_lockdep_tracks_kernel_spinlocks(self, kernel):
        kernel.run_syscall("creat", (1,))
        assert kernel.lockdep.held_by(1) == ()  # released at syscall end
