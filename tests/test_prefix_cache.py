"""Prefix-cache differential suite: snapshot-tree positioning vs fresh runs.

The prefix cache's contract is the same as the boot snapshot's, one
level up: a kernel positioned by *restoring* a prefix snapshot must be
byte-identical to one that *executed* the prefix fresh after boot — in
every observable, under every engine tier — so cached and uncached
campaigns produce equal results while the cached one skips the repeated
sequential prefix work.
"""

from dataclasses import replace as dc_replace

import os

import pytest

from repro.campaign_api import (
    CampaignSpec,
    run_campaign,
    spec_from_dict,
    spec_to_dict,
)
from repro.config import KernelConfig
from repro.errors import ExecutionLimitExceeded
from repro.fuzzer.fuzzer import OzzFuzzer
from repro.fuzzer.hints import (
    LD,
    ST,
    _hit_count,
    access_occurrences,
    filter_out,
    group_by_barriers,
)
from repro.fuzzer.prefix import PrefixCache
from repro.fuzzer.sti import STI, profile_sti, resolve_args
from repro.fuzzer.templates import seed_inputs
from repro.kernel.kernel import Kernel, KernelImage, KernelPool
from repro.kir.insn import BarrierKind
from repro.oemu.profiler import AccessEvent, Profiler
from repro.trace.replayer import CrashArtifact, replay_artifact

SAMPLE_CRASH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "examples", "sample_crash.json"
)

TIERS = ("reference", "decoded", "codegen")


@pytest.fixture(scope="module")
def images():
    return {tier: KernelImage(KernelConfig(engine=tier)) for tier in TIERS}


def _world(kernel):
    return (
        kernel.memory.fingerprint(),
        kernel.shadow.fingerprint(),
        kernel.clock.now,
        kernel.allocator.total_allocs,
        kernel.allocator.total_frees,
        kernel._next_thread,
        dict(kernel.fdtable),
        kernel.next_fd,
    )


def _longest_seed() -> STI:
    return max(seed_inputs(), key=len)


def _fresh_prefix_world(image, sti, prefix_len):
    """Execute calls[0..prefix_len) on a fresh kernel; (world, retvals)."""
    kernel = Kernel(image)
    retvals = []
    for call in sti.calls[:prefix_len]:
        retvals.append(kernel.run_syscall(call.name, resolve_args(call, retvals)))
    return _world(kernel), retvals


class TestPositioningEquivalence:
    @pytest.mark.parametrize("tier", TIERS)
    def test_restored_prefix_matches_fresh_execution(self, images, tier):
        """Every prefix depth of the longest seed STI: cache-positioned
        world and retvals == fresh sequential execution, per tier."""
        image = images[tier]
        sti = _longest_seed()
        assert len(sti) >= 3, "seed corpus lost its long STI"
        cache = PrefixCache(KernelPool(image), sti)
        for depth in range(len(sti) + 1):
            kernel, retvals = cache.position(depth)
            fresh_world, fresh_retvals = _fresh_prefix_world(image, sti, depth)
            assert _world(kernel) == fresh_world, (tier, depth)
            assert retvals == fresh_retvals, (tier, depth)

    @pytest.mark.parametrize("tier", TIERS)
    def test_exact_hit_replays_identically(self, images, tier):
        """Positioning twice at the same depth (2nd time via pure
        restore) yields the identical world — and counts a hit."""
        image = images[tier]
        sti = _longest_seed()
        cache = PrefixCache(KernelPool(image), sti)
        depth = len(sti) - 1
        kernel, retvals1 = cache.position(depth)
        first = _world(kernel)
        hits_before = kernel.engine_counters.prefix_hits
        kernel, retvals2 = cache.position(depth)
        assert _world(kernel) == first
        assert retvals1 == retvals2
        assert kernel.engine_counters.prefix_hits == hits_before + 1

    def test_dirty_tracking_survives_restore_cycles(self, images):
        """boot → prefix → boot → prefix again: the delta overlay must
        re-mark pages dirty, or the second cycle restores a stale world."""
        image = images["decoded"]
        sti = _longest_seed()
        pool = KernelPool(image)
        cache = PrefixCache(pool, sti)
        kernel, _ = cache.position(2)
        prefix_world = _world(kernel)
        boot_world = _world(pool.acquire())  # back to boot
        kernel, _ = cache.position(2)  # restore the delta again
        assert _world(kernel) == prefix_world
        assert _world(pool.acquire()) == boot_world

    def test_longer_prefix_extends_deepest_cached(self, images):
        """A deeper request executes only the missing calls and caches
        every level on the way up (contiguous snapshot tree)."""
        image = images["decoded"]
        sti = _longest_seed()
        cache = PrefixCache(KernelPool(image), sti)
        cache.position(1)
        assert sorted(cache._snaps) == [1]
        kernel, _ = cache.position(len(sti))
        assert sorted(cache._snaps) == list(range(1, len(sti) + 1))
        assert cache.depth == len(sti)
        # The extension restored the depth-1 snapshot (a partial hit).
        assert kernel.engine_counters.prefix_hits >= 1


class TestPoisonedPrefix:
    def test_failed_prefix_call_poisons_deeper_requests(self, images):
        image = images["decoded"]
        sti = _longest_seed()
        pool = KernelPool(image)
        cache = PrefixCache(pool, sti)
        kernel = pool.acquire()

        real = Kernel.run_syscall
        calls = {"n": 0}

        def exploding(self, name, args=(), **kw):
            calls["n"] += 1
            if calls["n"] >= 2:
                raise ExecutionLimitExceeded("injected prefix hang")
            return real(self, name, args, **kw)

        Kernel.run_syscall = exploding
        try:
            assert cache.position(3) is None
        finally:
            Kernel.run_syscall = real
        # Depths beyond the failure stay poisoned; shallower ones work.
        assert cache.position(3) is None
        assert cache.position(2) is None  # failed at index 1 (2nd call)
        assert cache.position(1) is not None
        assert cache.position(0) is not None


class TestCampaignEquivalence:
    @pytest.mark.parametrize("tier", TIERS)
    def test_campaign_results_equal_cache_on_off(self, tier):
        """30-iteration campaigns, prefix cache on vs off, per engine
        tier: the full CampaignResult compares equal (spec aside), and
        the cached run is non-vacuous (prefix_hits > 0)."""
        on = run_campaign(
            CampaignSpec(iterations=30, seed=9, engine=tier, prefix_cache=True)
        )
        off = run_campaign(
            CampaignSpec(iterations=30, seed=9, engine=tier, prefix_cache=False)
        )
        assert dc_replace(on, spec=off.spec) == off
        assert on.engine_counters.get("prefix_hits", 0) > 0
        assert on.engine_counters.get("calls_skipped", 0) > 0
        assert off.engine_counters.get("prefix_hits", 0) == 0
        assert on.stats.tests_run > 0

    def test_fuzzer_counters_flow_from_cache(self):
        """In-process campaign: module counters pick up hits/snapshots."""
        from repro.oemu.profiler import ENGINE_COUNTERS

        base = ENGINE_COUNTERS.snapshot()
        fuzzer = OzzFuzzer(KernelImage(KernelConfig()), seed=5)
        fuzzer.run(20)
        delta = ENGINE_COUNTERS.diff(base)
        assert delta["prefix_snapshots"] > 0
        assert delta["prefix_hits"] > 0
        assert delta["calls_skipped"] >= delta["prefix_hits"]


class TestReplay:
    @pytest.mark.parametrize("prefix_cache", (True, False))
    def test_sample_crash_replays_with_and_without_cache(self, prefix_cache):
        """The shipped artifact replays byte-for-byte whether or not the
        replay image enables prefix caching (recording/replay runs boot
        fresh kernels, so the toggle must be invisible to them)."""
        artifact = CrashArtifact.load(SAMPLE_CRASH)
        verdict = replay_artifact(
            artifact,
            image=KernelImage(
                KernelConfig(
                    patched=frozenset(artifact.reproducer.patched),
                    prefix_cache=prefix_cache,
                )
            ),
        )
        assert verdict.ok, (prefix_cache, verdict.render())


class TestSpecAndConfig:
    def test_spec_round_trips_prefix_cache(self):
        spec = CampaignSpec(iterations=5, prefix_cache=False)
        assert spec_from_dict(spec_to_dict(spec)) == spec
        # Absent key (older payloads) defaults on.
        payload = spec_to_dict(CampaignSpec(iterations=5))
        del payload["prefix_cache"]
        assert spec_from_dict(payload).prefix_cache is True

    def test_prefix_cache_requires_snapshot_reset(self):
        assert not KernelConfig(snapshot_reset=False).prefix_cache
        assert not CampaignSpec(snapshot_reset=False).prefix_cache
        assert KernelConfig().prefix_cache
        assert CampaignSpec().prefix_cache


class TestSatelliteRegressions:
    def test_sched_hit_precompute_matches_reference_on_seeds(self):
        """Satellite 1: the one-pass occurrence map agrees with the
        O(n²) reference scan for every group of every seed STI pair."""
        image = KernelImage(KernelConfig())
        checked = 0
        for sti in seed_inputs():
            profile = profile_sti(image, sti)
            assert profile.ok
            for i in range(len(profile.profiles) - 1):
                a, b = profile.profiles[i], profile.profiles[i + 1]
                fa, fb = filter_out(a.events, b.events)
                for events in (fa, fb):
                    accesses = [
                        e for e in events if isinstance(e, AccessEvent)
                    ]
                    occ = access_occurrences(accesses)
                    for barrier_type in (ST, LD):
                        for group in group_by_barriers(events, barrier_type):
                            if len(group) < 2:
                                continue
                            sched = (
                                group[-1] if barrier_type == ST else group[0]
                            )
                            assert occ[id(sched)] == _hit_count(
                                accesses, sched
                            )
                            checked += 1
        assert checked > 0, "no groups exercised — vacuous"

    def test_profiler_detach_protects_cached_profiles(self):
        """Satellite 3: a profile captured from a pooled kernel must not
        mutate when the same kernel+profiler profile the next STI."""
        image = KernelImage(KernelConfig())
        pool = KernelPool(image)
        profiler = Profiler()
        seeds = list(seed_inputs())
        first = profile_sti(image, seeds[0], kernel=pool.acquire(profiler=profiler))
        snapshot = [tuple(p.events) for p in first.profiles]
        assert any(snapshot), "first profile recorded nothing — vacuous"
        profile_sti(image, seeds[1], kernel=pool.acquire(profiler=profiler))
        assert [tuple(p.events) for p in first.profiles] == snapshot

    def test_events_for_detaches(self):
        profiler = Profiler()
        profiler.start_thread(7)
        profiler.on_barrier(7, 0x10, BarrierKind.FULL, 1, False, "f")
        events = profiler.events_for(7)
        assert len(events) == 1
        # Detached: a second request is empty, later recording for the
        # same thread id cannot touch the handed-off list.
        assert profiler.events_for(7) == []
        profiler.on_barrier(7, 0x14, BarrierKind.FULL, 2, False, "f")
        assert len(events) == 1
