"""Differential tests: decoded dispatch vs the reference interpreter.

The decoded engine (`KernelConfig.decoded_dispatch`, default on) and the
boot-snapshot reset (`snapshot_reset`) are pure optimizations — every
observable (syscall return values, memory/shadow contents, profiler
event streams, coverage, crash identity, ExecTrace event streams) must
be identical to the reference isinstance-chain interpreter running on
fresh-booted kernels.  These tests drive both engines over the same
inputs and assert exactly that.
"""

import os

import pytest

from repro.config import KernelConfig
from repro.fuzzer.fuzzer import OzzFuzzer
from repro.fuzzer.mti import run_mti
from repro.fuzzer.sti import profile_sti
from repro.fuzzer.templates import seed_inputs
from repro.kernel.kernel import Kernel, KernelImage
from repro.kir.function import Program
from repro.litmus.programs import standard_suite
from repro.machine import Machine
from repro.oemu.instrument import instrument_program
from repro.trace.recorder import TraceRecorder
from repro.trace.replayer import CrashArtifact, replay_artifact

SAMPLE_CRASH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "examples", "sample_crash.json"
)

DECODED = KernelConfig()  # engine optimizations are the defaults
REFERENCE = KernelConfig(decoded_dispatch=False, snapshot_reset=False)


@pytest.fixture(scope="module")
def decoded_image():
    return KernelImage(DECODED)


@pytest.fixture(scope="module")
def reference_image():
    return KernelImage(REFERENCE)


class TestSeedInputs:
    def test_profiles_identical(self, decoded_image, reference_image):
        """Every seed STI: same retvals, profiler events, coverage, crash."""
        for sti in seed_inputs():
            dec = profile_sti(decoded_image, sti)
            ref = profile_sti(reference_image, sti)
            assert dec.retvals == ref.retvals, sti
            assert dec.coverage == ref.coverage, sti
            assert (dec.crash is None) == (ref.crash is None), sti
            if dec.crash is not None:
                assert dec.crash.title == ref.crash.title, sti
            assert len(dec.profiles) == len(ref.profiles), sti
            for p_dec, p_ref in zip(dec.profiles, ref.profiles):
                assert p_dec.syscall == p_ref.syscall
                assert p_dec.retval == p_ref.retval
                # AccessEvent/BarrierEvent are frozen dataclasses with
                # value equality — the five-/three-tuple streams must
                # match element for element.
                assert p_dec.events == p_ref.events, (sti, p_dec.syscall)

    def test_memory_state_identical(self, decoded_image, reference_image):
        """After each seed STI the kernels' memory worlds are equal."""
        for sti in seed_inputs():
            kernels = [Kernel(decoded_image), Kernel(reference_image)]
            for kernel in kernels:
                retvals = []
                for call in sti.calls:
                    from repro.fuzzer.sti import resolve_args

                    retvals.append(
                        kernel.run_syscall(call.name, resolve_args(call, retvals))
                    )
            dec, ref = kernels
            assert dec.memory.fingerprint() == ref.memory.fingerprint(), sti
            assert dec.shadow.fingerprint() == ref.shadow.fingerprint(), sti
            assert dec.clock.now == ref.clock.now, sti


class TestLitmus:
    @pytest.mark.parametrize("test", standard_suite(), ids=lambda t: t.name)
    def test_round_robin_outcomes_identical(self, test):
        """Each litmus program, stepped round-robin under both engines,
        produces the same outcome tuple and final memory contents."""
        program, _ = instrument_program(Program(list(test.functions)))

        def run(decoded):
            m = Machine(program, ncpus=len(test.functions), decoded_dispatch=decoded)
            threads = [
                m.spawn(f.name, cpu=idx) for idx, f in enumerate(test.functions)
            ]
            for t in threads:
                m.oemu.thread_state(t.thread_id)  # pin window start at t=0
            pending = list(threads)
            while pending:
                for thread in list(pending):
                    if not m.interp.step(thread):
                        m.oemu.flush(thread.thread_id)
                        pending.remove(thread)
            return tuple(t.retval for t in threads), m.memory.fingerprint()

        dec_outcome, dec_mem = run(True)
        ref_outcome, ref_mem = run(False)
        assert dec_outcome == ref_outcome
        assert dec_mem == ref_mem
        assert dec_outcome in test.allowed


class TestTracedMTI:
    @pytest.fixture(scope="class")
    def crash_artifact(self, decoded_image):
        fuzzer = OzzFuzzer(decoded_image, seed=1)
        fuzzer.run(6)
        for rec in fuzzer.crashdb.records.values():
            if rec.artifact is not None and rec.artifact.reordered_insns:
                return rec.artifact
        pytest.fail("campaign found no OOO crash with an artifact")

    def test_event_streams_byte_identical(
        self, crash_artifact, decoded_image, reference_image
    ):
        """A recorded MTI emits the same ExecTrace stream on both engines."""
        rec_dec = TraceRecorder()
        res_dec = run_mti(decoded_image, crash_artifact.mti, trace=rec_dec)
        rec_ref = TraceRecorder()
        res_ref = run_mti(reference_image, crash_artifact.mti, trace=rec_ref)
        assert res_dec.crashed and res_ref.crashed
        assert res_dec.crash.title == res_ref.crash.title
        assert res_dec.steps == res_ref.steps
        assert rec_dec.schedule_dict()["events"] == rec_ref.schedule_dict()["events"]

    def test_sample_crash_replays_under_both_engines(self):
        """PR 3's shipped artifact still replays byte-for-byte, decoded
        (the artifact's own image — optimization defaults) and reference."""
        artifact = CrashArtifact.load(SAMPLE_CRASH)
        decoded = replay_artifact(artifact)
        assert decoded.ok, decoded.render()
        reference = replay_artifact(
            artifact,
            image=KernelImage(
                KernelConfig(
                    patched=frozenset(artifact.reproducer.patched),
                    decoded_dispatch=False,
                    snapshot_reset=False,
                )
            ),
        )
        assert reference.ok, reference.render()


class TestCampaign:
    def test_stats_and_crashes_identical(self):
        """Same seed, same iteration count: the optimized engine's
        campaign is observationally equal to the reference engine's."""
        results = []
        for config in (DECODED, REFERENCE):
            fuzzer = OzzFuzzer(KernelImage(config), seed=11)
            stats = fuzzer.run(30)
            results.append((stats, frozenset(fuzzer.crashdb.unique_titles)))
        (dec_stats, dec_titles), (ref_stats, ref_titles) = results
        assert dec_stats == ref_stats
        assert dec_titles == ref_titles
        assert dec_stats.tests_run > 0
