"""Tests for the LKMM ppo rules (paper §3.3, Appendix §10.1).

The seven cases, expressed as a decision matrix over
:func:`repro.oemu.lkmm.reordering_allowed`, plus the barrier-semantics
table (Table 1) that OEMU and the hint calculator share.
"""

import pytest

from repro.kir.insn import Annot, AtomicOrdering, BarrierKind
from repro.oemu.barriers import (
    atomic_effect,
    implicit_barriers_for_atomic,
    implicit_barriers_for_load,
    implicit_barriers_for_store,
    load_effect,
    store_effect,
)
from repro.oemu.lkmm import DependencyKind, PpoQuery, reordering_allowed


def q(x, y, **kw):
    return PpoQuery(x_is_store=(x == "W"), y_is_store=(y == "W"), **kw)


class TestSevenCases:
    # Case 1: smp_mb orders everything.
    @pytest.mark.parametrize("x,y", [("W", "W"), ("W", "R"), ("R", "R"), ("R", "W")])
    def test_case1_full_barrier(self, x, y):
        assert not reordering_allowed(q(x, y, barrier_between=BarrierKind.FULL))

    # Case 2: smp_wmb orders store-store only.
    def test_case2_wmb_orders_stores(self):
        assert not reordering_allowed(q("W", "W", barrier_between=BarrierKind.WMB))

    def test_case2_wmb_does_not_order_loads(self):
        assert reordering_allowed(q("R", "R", barrier_between=BarrierKind.WMB))

    def test_case2_wmb_does_not_order_store_load(self):
        assert reordering_allowed(q("W", "R", barrier_between=BarrierKind.WMB))

    # Case 3: smp_rmb orders load-load only.
    def test_case3_rmb_orders_loads(self):
        assert not reordering_allowed(q("R", "R", barrier_between=BarrierKind.RMB))

    def test_case3_rmb_does_not_order_stores(self):
        assert reordering_allowed(q("W", "W", barrier_between=BarrierKind.RMB))

    # Case 4: an acquire load is ordered before everything after it.
    @pytest.mark.parametrize("y", ["W", "R"])
    def test_case4_acquire(self, y):
        assert not reordering_allowed(q("R", y, x_annot=Annot.ACQUIRE))

    # Case 5: a release store is ordered after everything before it.
    @pytest.mark.parametrize("x", ["W", "R"])
    def test_case5_release(self, x):
        assert not reordering_allowed(q(x, "W", y_annot=Annot.RELEASE))

    # Case 6: address dependency + annotated first load.
    def test_case6_read_once_addr_dep(self):
        assert not reordering_allowed(
            q("R", "R", x_annot=Annot.ONCE, dependency=DependencyKind.ADDRESS)
        )

    def test_case6_alpha_rule_plain_load(self):
        """Without READ_ONCE the LKMM *allows* reordering dependent
        loads — the Alpha rule."""
        assert reordering_allowed(
            q("R", "R", x_annot=Annot.PLAIN, dependency=DependencyKind.ADDRESS)
        )

    # Case 7: any dependency forbids load-store reordering (and OEMU
    # never emulates it regardless).
    @pytest.mark.parametrize(
        "dep", [DependencyKind.DATA, DependencyKind.ADDRESS, DependencyKind.CONTROL, None]
    )
    def test_case7_load_store_never_reordered(self, dep):
        assert not reordering_allowed(q("R", "W", dependency=dep))

    # Defaults: unordered plain accesses may reorder.
    @pytest.mark.parametrize("x,y", [("W", "W"), ("W", "R"), ("R", "R")])
    def test_unordered_plain_accesses_may_reorder(self, x, y):
        assert reordering_allowed(q(x, y))


class TestTable1Semantics:
    def test_plain_store_delayable(self):
        eff = store_effect(Annot.PLAIN)
        assert eff.delayable and not eff.store_fence_before

    def test_write_once_is_relaxed(self):
        assert store_effect(Annot.ONCE).delayable

    def test_release_store_fences(self):
        eff = store_effect(Annot.RELEASE)
        assert eff.store_fence_before and not eff.delayable

    def test_plain_load_versionable(self):
        eff = load_effect(Annot.PLAIN)
        assert eff.versionable and not eff.load_fence_after

    def test_read_once_bounds_window(self):
        eff = load_effect(Annot.ONCE)
        assert eff.versionable and eff.load_fence_after

    def test_acquire_load(self):
        eff = load_effect(Annot.ACQUIRE)
        assert eff.load_fence_after and not eff.versionable

    def test_invalid_annotations_rejected(self):
        with pytest.raises(ValueError):
            store_effect(Annot.ACQUIRE)
        with pytest.raises(ValueError):
            load_effect(Annot.RELEASE)

    @pytest.mark.parametrize(
        "ordering,before,after",
        [
            (AtomicOrdering.RELAXED, False, False),
            (AtomicOrdering.ACQUIRE, False, True),
            (AtomicOrdering.RELEASE, True, False),
            (AtomicOrdering.FULL, True, True),
        ],
    )
    def test_atomic_orderings(self, ordering, before, after):
        eff = atomic_effect(ordering)
        assert eff.store_fence_before == before
        assert eff.load_fence_after == after

    def test_implicit_barrier_events(self):
        assert implicit_barriers_for_store(Annot.RELEASE) == (BarrierKind.WMB,)
        assert implicit_barriers_for_store(Annot.ONCE) == ()
        assert implicit_barriers_for_load(Annot.ACQUIRE) == (BarrierKind.RMB,)
        assert implicit_barriers_for_load(Annot.ONCE) == (BarrierKind.RMB,)
        assert implicit_barriers_for_atomic(AtomicOrdering.FULL) == (
            (BarrierKind.WMB,),
            (BarrierKind.RMB,),
        )
        assert implicit_barriers_for_atomic(AtomicOrdering.RELAXED) == ((), ())
