"""Tests for kernel image building, boot, and the syscall surface."""

import pytest

from repro.config import KernelConfig
from repro.errors import KirError
from repro.kernel import KernelImage, Kernel
from repro.kernel.bugs import all_bugs
from repro.fuzzer.syzlang import validate_against_kernel
from repro.fuzzer.templates import templates


@pytest.fixture(scope="module")
def image():
    return KernelImage(KernelConfig())


@pytest.fixture()
def kernel(image):
    return Kernel(image)


class TestImage:
    def test_builds_and_links(self, image):
        assert len(image.program.functions) > 80
        assert len(image.syscalls) >= 60

    def test_globals_disjoint(self, image):
        # Globals must not overlap (they are address-assigned by the image).
        spans = []
        for subsystem in image.subsystems:
            for name, size in subsystem.globals.items():
                base = image.globals[name]
                spans.append((base, base + size, name))
        spans.sort()
        for (s1, e1, n1), (s2, e2, n2) in zip(spans, spans[1:]):
            assert e1 <= s2, f"{n1} overlaps {n2}"

    def test_every_function_has_an_owner(self, image):
        for name in image.program.functions:
            assert name in image.function_owner, name

    def test_every_bug_has_live_syscalls(self, image):
        for spec in all_bugs():
            assert spec.victim_syscall in image.syscalls, spec.bug_id
            assert spec.observer_syscall in image.syscalls, spec.bug_id
            for setup in spec.setup_syscalls:
                assert setup in image.syscalls, (spec.bug_id, setup)

    def test_bug_crash_functions_exist(self, image):
        """Every registry title names a function that actually exists."""
        import re

        for spec in all_bugs():
            m = re.search(r" in ([A-Za-z_][A-Za-z0-9_]*)$", spec.title)
            if m is None:
                continue  # e.g. the semantic-oracle title
            func = m.group(1)
            if spec.bug_id == "t4_sbitmap":
                func = "sbitmap_queue_clear"
            assert image.program.has_function(func), (spec.bug_id, func)

    def test_syzlang_templates_match_kernel(self, image):
        assert validate_against_kernel(templates(), image) == []

    def test_duplicate_syscall_rejected(self):
        from repro.kernel.subsystem import Subsystem
        from repro.kernel.syscalls import SyscallDef
        from repro.kir import Builder
        from repro.errors import ConfigError

        def build(cfg, glob):
            b = Builder("sys_x")
            b.ret(0)
            return [b.function()]

        dup = Subsystem(
            name="dup", build=build,
            syscalls=(SyscallDef("null", "sys_x"),),  # clashes with core's
        )
        from repro.kernel.kernel import default_subsystems

        with pytest.raises(ConfigError, match="duplicate syscall"):
            KernelImage(KernelConfig(), default_subsystems() + [dup])


class TestKernelInstance:
    def test_boot_initializes_subsystem_state(self, kernel):
        # watch_queue's ops-table confirm pointer is wired at boot.
        ops = kernel.glob("wq_pipe_ops")
        assert kernel.peek(ops) == kernel.program.func_addr("wq_confirm")
        # vlan's slots hold recycled garbage.
        from repro.kernel.subsystems.vlan import GARBAGE_PTR, VLAN_GROUP

        assert kernel.peek(kernel.glob("vlan_group") + VLAN_GROUP.slots) == GARBAGE_PTR

    def test_fresh_instances_share_the_image(self, image):
        k1, k2 = Kernel(image), Kernel(image)
        assert k1.program is k2.program
        k1.poke(k1.glob("wq_pipe"), 42)
        assert k2.peek(k2.glob("wq_pipe")) == 0  # state is isolated

    def test_unknown_syscall_rejected(self, kernel):
        with pytest.raises(KirError, match="no syscall"):
            kernel.run_syscall("does_not_exist")

    def test_unknown_global_rejected(self, kernel):
        with pytest.raises(KirError, match="no global"):
            kernel.glob("nope")

    def test_arg_fitting_pads_and_truncates(self, kernel):
        assert kernel.run_syscall("null", (1, 2, 3)) == 1  # extra args dropped
        assert kernel.run_syscall("watch_queue_post") == 0  # missing arg -> 0

    def test_fd_table_flows(self, kernel):
        fd = kernel.run_syscall("socket")
        assert fd >= 3
        fd2 = kernel.run_syscall("socket")
        assert fd2 == fd + 1
        assert kernel.fdtable[fd] != kernel.fdtable[fd2]


ALL_SYSCALL_SMOKE = [
    ("null", ()), ("getpid", ()), ("ctxsw", ()), ("pipe_lat", (5,)),
    ("unix_lat", (5,)), ("fork", ()), ("mmap", (4,)),
    ("creat", (1,)), ("stat", (1,)), ("unlink", (1,)),
    ("watch_queue_create", ()), ("watch_queue_set_size", (8,)),
    ("watch_queue_post", (3,)), ("pipe_read", ()),
    ("socket", ()), ("rds_socket", ()), ("rds_sendmsg", (0,)),
    ("xsk_socket", ()), ("vmci_create", ()), ("vmci_wait", ()),
    ("gsm_dlci_open", (1500,)), ("gsm_dlci_config", (1,)),
    ("vlan_add", ()), ("vlan_get_device", ()),
    ("open", (1,)), ("fget_light_read", ()), ("dup_close", ()),
    ("nbd_setup", ()), ("nbd_alloc_config", ()), ("nbd_ioctl", (0,)),
    ("nbd_config_put", ()), ("unix_socket", ()), ("unix_bind", (16,)),
    ("unix_getname", ()), ("blk_complete", ()), ("blk_submit", ()),
    ("smc_socket", ()), ("vmci_wait", ()),
]


class TestSyscallSmoke:
    """Every syscall runs crash-free single-threaded (the §4.2 property:
    the seeded bugs are pure concurrency bugs)."""

    @pytest.mark.parametrize("name,args", ALL_SYSCALL_SMOKE, ids=lambda p: str(p))
    def test_syscall_runs_clean(self, kernel, name, args):
        kernel.run_syscall(name, args)

    def test_fd_consuming_syscalls_run_clean(self, kernel):
        sock = kernel.run_syscall("socket")
        for name in ("tls_init", "setsockopt", "tls_getsockopt", "tls_err_abort",
                     "tls_getsockopt_err", "sockmap_update", "sock_data_ready"):
            kernel.run_syscall(name, (sock,))
        kernel.run_syscall("tls_set_crypto", (sock, 7))
        xsk = kernel.run_syscall("xsk_socket")
        for name in ("xsk_bind", "xsk_poll", "xsk_sendmsg", "xsk_setup_ring",
                     "xsk_ring_deref", "xsk_activate", "xsk_state_xmit", "xsk_unbind"):
            kernel.run_syscall(name, (xsk,))
        smc = kernel.run_syscall("smc_socket")
        for name in ("smc_listen", "smc_connect", "smc_accept", "smc_release"):
            kernel.run_syscall(name, (smc,))
        fd = kernel.run_syscall("fs_open", (1,))
        if fd:
            kernel.run_syscall("fs_write", (fd, 8))
            kernel.run_syscall("fs_read", (fd,))
            kernel.run_syscall("fs_close", (fd,))

    def test_bad_fd_is_harmless(self, kernel):
        for name in ("tls_init", "xsk_bind", "xsk_poll", "fs_close", "fs_read"):
            kernel.run_syscall(name, (9999,))
