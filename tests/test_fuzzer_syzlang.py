"""Tests for the mini-Syzlang parser (paper §4.2's description language)."""

import pytest

from repro.errors import SyzlangError
from repro.fuzzer.syzlang import ArgTemplate, parse


class TestParsing:
    def test_no_args_with_resource(self):
        (t,) = parse("socket() sock_fd")
        assert t.name == "socket" and t.produces == "sock_fd" and t.args == ()

    def test_int_range(self):
        (t,) = parse("write(n int[0:255])")
        (arg,) = t.args
        assert arg.kind == "int" and (arg.lo, arg.hi) == (0, 255)

    def test_flags(self):
        (t,) = parse("bind(len flags[16,32,64])")
        assert t.args[0].values == (16, 32, 64)

    def test_const(self):
        (t,) = parse("ioctl(cmd const[7])")
        assert t.args[0].kind == "const" and t.args[0].values == (7,)

    def test_resource_argument(self):
        (t,) = parse("use(fd sock_fd)")
        assert t.args[0].kind == "resource" and t.args[0].resource == "sock_fd"
        assert t.consumed_resources() == ("sock_fd",)

    def test_multiple_args_with_bracketed_commas(self):
        (t,) = parse("mix(fd sock_fd, len flags[1,2], n int[0:3])")
        assert [a.kind for a in t.args] == ["resource", "flags", "int"]

    def test_comments_and_blank_lines(self):
        ts = parse("# header\n\nsocket() fd\n  # trailing\nclose(fd fd)\n")
        assert [t.name for t in ts] == ["socket", "close"]

    def test_inline_comment(self):
        (t,) = parse("socket() fd # makes a socket")
        assert t.produces == "fd"


class TestErrors:
    def test_garbage_line(self):
        with pytest.raises(SyzlangError, match="line 1"):
            parse("not a syscall at all!")

    def test_bad_type(self):
        with pytest.raises(SyzlangError, match="cannot parse type"):
            parse("f(x strange[1])")

    def test_missing_type(self):
        with pytest.raises(SyzlangError, match="malformed argument"):
            parse("f(x)")

    def test_empty_range(self):
        with pytest.raises(SyzlangError, match="empty range"):
            parse("f(x int[5:1])")

    def test_duplicate_syscall(self):
        with pytest.raises(SyzlangError, match="duplicate"):
            parse("f()\nf()")


class TestKernelConsistency:
    def test_full_description_parses(self):
        from repro.fuzzer.templates import SYZLANG, templates

        ts = templates()
        assert len(ts) >= 50

    def test_validation_catches_missing_template(self):
        from repro.config import KernelConfig
        from repro.fuzzer.syzlang import validate_against_kernel
        from repro.kernel.kernel import KernelImage

        image = KernelImage(KernelConfig(instrumented=False))
        problems = validate_against_kernel(parse("socket() sock_fd"), image)
        assert any("has no template" in p for p in problems)

    def test_validation_catches_unknown_syscall(self):
        from repro.config import KernelConfig
        from repro.fuzzer.syzlang import validate_against_kernel
        from repro.fuzzer.templates import templates
        from repro.kernel.kernel import KernelImage

        image = KernelImage(KernelConfig(instrumented=False))
        extra = templates() + parse("made_up()")
        problems = validate_against_kernel(extra, image)
        assert any("no such syscall" in p for p in problems)
