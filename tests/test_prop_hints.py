"""Property tests on Algorithm 1/2's structural invariants."""

from hypothesis import given, settings, strategies as st

from repro.fuzzer.hints import (
    LD,
    ST,
    _hit_count,
    access_occurrences,
    calculate_hints,
    filter_out,
    shared_memory_bytes,
    shared_memory_locations,
)
from repro.fuzzer.intervals import (
    ByteIntervalSet,
    span_overlap_stats,
    weighted_spans,
)
from repro.kir.insn import Annot, BarrierKind
from repro.oemu.profiler import AccessEvent, BarrierEvent, SyscallProfile

SLOTS = [0x1000 + 8 * i for i in range(5)]


@st.composite
def event_streams(draw):
    n = draw(st.integers(min_value=0, max_value=10))
    events = []
    ts = 0
    inst = draw(st.integers(min_value=1, max_value=1000)) * 0x100
    for _ in range(n):
        ts += 1
        inst += 4
        kind = draw(st.sampled_from(["store", "load", "wmb", "rmb", "mb"]))
        if kind in ("store", "load"):
            events.append(
                AccessEvent(
                    inst,
                    draw(st.sampled_from(SLOTS)),
                    8,
                    kind == "store",
                    ts,
                    Annot.PLAIN,
                    "f",
                )
            )
        else:
            bk = {"wmb": BarrierKind.WMB, "rmb": BarrierKind.RMB, "mb": BarrierKind.FULL}[kind]
            events.append(BarrierEvent(inst, bk, ts))
    return events


class TestHintInvariants:
    @given(event_streams(), event_streams())
    @settings(max_examples=80, deadline=None)
    def test_structural_invariants(self, ev_i, ev_j):
        p_i = SyscallProfile("a", list(ev_i))
        p_j = SyscallProfile("b", list(ev_j))
        hints = calculate_hints(p_i, p_j)
        profiles = (p_i, p_j)
        counts = [h.nreorder for h in hints]
        assert counts == sorted(counts, reverse=True)  # the greedy order
        for h in hints:
            side_accesses = {a.inst_addr for a in profiles[h.reorder_side].accesses}
            assert h.reorder, "empty reorder set is a useless test"
            assert set(h.reorder) <= side_accesses
            assert h.sched_addr in side_accesses
            assert h.sched_addr not in h.reorder
            assert h.barrier_type in (ST, LD)
            assert h.sched_hit >= 1
            assert h.nreorder == len(h.reorder)

    @given(event_streams(), event_streams())
    @settings(max_examples=60, deadline=None)
    def test_filter_only_removes_accesses(self, ev_i, ev_j):
        fa, fb = filter_out(ev_i, ev_j)
        assert len(fa) <= len(ev_i) and len(fb) <= len(ev_j)
        # Barriers all survive.
        assert sum(isinstance(e, BarrierEvent) for e in fa) == sum(
            isinstance(e, BarrierEvent) for e in ev_i
        )
        # Order is preserved.
        kept = [e for e in ev_i if e in fa]
        assert kept == fa

    @given(event_streams())
    @settings(max_examples=40, deadline=None)
    def test_no_hints_against_disjoint_partner(self, ev):
        """A partner touching disjoint memory yields zero hints."""
        far = [
            AccessEvent(0x9000, 0x9000 + 8 * i, 8, True, i, Annot.PLAIN, "g")
            for i in range(3)
        ]
        hints = calculate_hints(SyscallProfile("a", list(ev)), SyscallProfile("b", far))
        for h in hints:
            assert h.reorder_side in (0, 1)
        # accesses on the far side can never be 'shared'
        assert not [h for h in hints if h.reorder_side == 1]

    @given(event_streams(), event_streams())
    @settings(max_examples=40, deadline=None)
    def test_deterministic(self, ev_i, ev_j):
        p_i = SyscallProfile("a", list(ev_i))
        p_j = SyscallProfile("b", list(ev_j))
        assert calculate_hints(p_i, p_j) == calculate_hints(p_i, p_j)


# ---------------------------------------------------------------------------
# Interval-algebra equivalence: the span-based implementations must agree
# with the per-byte set/dict references on arbitrary overlapping,
# variable-width accesses (the fixed-stride event_streams() above never
# produces partial overlaps, so these get their own strategy).
# ---------------------------------------------------------------------------


@st.composite
def access_streams(draw):
    """Accesses with sizes 1/2/4/8 over a tight window — partial overlaps,
    adjacency and duplicates are all likely."""
    n = draw(st.integers(min_value=0, max_value=12))
    events = []
    for ts in range(n):
        events.append(
            AccessEvent(
                draw(st.integers(min_value=1, max_value=40)) * 4,
                0x1000 + draw(st.integers(min_value=0, max_value=0x40)),
                draw(st.sampled_from([1, 2, 4, 8])),
                draw(st.booleans()),
                ts,
                Annot.PLAIN,
                "f",
            )
        )
    return events


@st.composite
def weighted_span_lists(draw):
    n = draw(st.integers(min_value=0, max_value=10))
    return [
        (
            (start := draw(st.integers(min_value=0, max_value=60))),
            start + draw(st.integers(min_value=0, max_value=12)),
            draw(st.integers(min_value=1, max_value=6)),
        )
        for _ in range(n)
    ]


def _byte_weights(spans):
    """Per-byte max-weight dict — the reference weighted_spans expands to."""
    out = {}
    for start, end, weight in spans:
        for byte in range(start, end):
            if weight > out.get(byte, 0):
                out[byte] = weight
    return out


class TestIntervalEquivalence:
    @given(access_streams(), access_streams())
    @settings(max_examples=120, deadline=None)
    def test_shared_locations_match_byte_reference(self, ev_a, ev_b):
        interval = shared_memory_locations(ev_a, ev_b)
        reference = shared_memory_bytes(ev_a, ev_b)
        assert set(interval) == reference
        assert len(interval) == len(reference)
        assert bool(interval) == bool(reference)
        probe = {b for e in ev_a + ev_b for b in (e.mem_addr, e.mem_addr + e.size)}
        for addr in probe:
            assert (addr in interval) == (addr in reference)
            assert interval.overlaps(addr, addr + 8) == bool(
                reference & set(range(addr, addr + 8))
            )

    @given(access_streams(), access_streams())
    @settings(max_examples=80, deadline=None)
    def test_filter_out_matches_byte_reference(self, ev_a, ev_b):
        """Algorithm 2 keeps exactly the accesses the byte set would."""
        shared = shared_memory_bytes(ev_a, ev_b)
        fa, fb = filter_out(ev_a, ev_b)
        for original, filtered in ((ev_a, fa), (ev_b, fb)):
            expected = [
                e
                for e in original
                if not isinstance(e, AccessEvent)
                or shared & set(range(e.mem_addr, e.mem_addr + e.size))
            ]
            assert filtered == expected

    @given(weighted_span_lists())
    @settings(max_examples=120, deadline=None)
    def test_weighted_spans_match_byte_dict(self, spans):
        normal = weighted_spans(spans)
        expanded = {}
        for start, end, weight in normal:
            assert start < end
            for byte in range(start, end):
                assert byte not in expanded, "overlapping output spans"
                expanded[byte] = weight
        assert expanded == _byte_weights(spans)
        # Normal form: sorted and maximally coalesced.
        for (s1, e1, w1), (s2, e2, w2) in zip(normal, normal[1:]):
            assert e1 <= s2
            assert not (e1 == s2 and w1 == w2), "adjacent equal-weight spans"

    @given(weighted_span_lists(), weighted_span_lists())
    @settings(max_examples=120, deadline=None)
    def test_span_overlap_stats_match_byte_dicts(self, spans_a, spans_b):
        wa, wb = _byte_weights(spans_a), _byte_weights(spans_b)
        shared = wa.keys() & wb.keys()
        expected = (
            max((max(wa[b], wb[b]) for b in shared), default=0),
            len(shared),
        )
        assert span_overlap_stats(
            weighted_spans(spans_a), weighted_spans(spans_b)
        ) == expected

    @given(access_streams())
    @settings(max_examples=100, deadline=None)
    def test_occurrence_map_matches_hit_count(self, events):
        occ = access_occurrences(events)
        for e in events:
            assert occ[id(e)] == _hit_count(events, e)

    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 50)), max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_interval_set_is_its_span_expansion(self, raw):
        spans = [(min(a, b), max(a, b)) for a, b in raw]
        s = ByteIntervalSet(spans)
        member_bytes = {b for start, end in spans for b in range(start, end)}
        assert set(s) == member_bytes
        assert len(s) == len(member_bytes)
        for start, end in spans:
            assert s.overlaps(start, end) == bool(
                member_bytes & set(range(start, end))
            )
