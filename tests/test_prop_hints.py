"""Property tests on Algorithm 1/2's structural invariants."""

from hypothesis import given, settings, strategies as st

from repro.fuzzer.hints import LD, ST, calculate_hints, filter_out
from repro.kir.insn import Annot, BarrierKind
from repro.oemu.profiler import AccessEvent, BarrierEvent, SyscallProfile

SLOTS = [0x1000 + 8 * i for i in range(5)]


@st.composite
def event_streams(draw):
    n = draw(st.integers(min_value=0, max_value=10))
    events = []
    ts = 0
    inst = draw(st.integers(min_value=1, max_value=1000)) * 0x100
    for _ in range(n):
        ts += 1
        inst += 4
        kind = draw(st.sampled_from(["store", "load", "wmb", "rmb", "mb"]))
        if kind in ("store", "load"):
            events.append(
                AccessEvent(
                    inst,
                    draw(st.sampled_from(SLOTS)),
                    8,
                    kind == "store",
                    ts,
                    Annot.PLAIN,
                    "f",
                )
            )
        else:
            bk = {"wmb": BarrierKind.WMB, "rmb": BarrierKind.RMB, "mb": BarrierKind.FULL}[kind]
            events.append(BarrierEvent(inst, bk, ts))
    return events


class TestHintInvariants:
    @given(event_streams(), event_streams())
    @settings(max_examples=80, deadline=None)
    def test_structural_invariants(self, ev_i, ev_j):
        p_i = SyscallProfile("a", list(ev_i))
        p_j = SyscallProfile("b", list(ev_j))
        hints = calculate_hints(p_i, p_j)
        profiles = (p_i, p_j)
        counts = [h.nreorder for h in hints]
        assert counts == sorted(counts, reverse=True)  # the greedy order
        for h in hints:
            side_accesses = {a.inst_addr for a in profiles[h.reorder_side].accesses}
            assert h.reorder, "empty reorder set is a useless test"
            assert set(h.reorder) <= side_accesses
            assert h.sched_addr in side_accesses
            assert h.sched_addr not in h.reorder
            assert h.barrier_type in (ST, LD)
            assert h.sched_hit >= 1
            assert h.nreorder == len(h.reorder)

    @given(event_streams(), event_streams())
    @settings(max_examples=60, deadline=None)
    def test_filter_only_removes_accesses(self, ev_i, ev_j):
        fa, fb = filter_out(ev_i, ev_j)
        assert len(fa) <= len(ev_i) and len(fb) <= len(ev_j)
        # Barriers all survive.
        assert sum(isinstance(e, BarrierEvent) for e in fa) == sum(
            isinstance(e, BarrierEvent) for e in ev_i
        )
        # Order is preserved.
        kept = [e for e in ev_i if e in fa]
        assert kept == fa

    @given(event_streams())
    @settings(max_examples=40, deadline=None)
    def test_no_hints_against_disjoint_partner(self, ev):
        """A partner touching disjoint memory yields zero hints."""
        far = [
            AccessEvent(0x9000, 0x9000 + 8 * i, 8, True, i, Annot.PLAIN, "g")
            for i in range(3)
        ]
        hints = calculate_hints(SyscallProfile("a", list(ev)), SyscallProfile("b", far))
        for h in hints:
            assert h.reorder_side in (0, 1)
        # accesses on the far side can never be 'shared'
        assert not [h for h in hints if h.reorder_side == 1]

    @given(event_streams(), event_streams())
    @settings(max_examples=40, deadline=None)
    def test_deterministic(self, ev_i, ev_j):
        p_i = SyscallProfile("a", list(ev_i))
        p_j = SyscallProfile("b", list(ev_j))
        assert calculate_hints(p_i, p_j) == calculate_hints(p_i, p_j)
