"""Tests for the unified campaign API and sharded parallel execution."""

import pytest

from repro.campaign_api import (
    CampaignResult,
    CampaignSpec,
    SEED_STRIDE,
    run_campaign,
)
from repro.errors import ConfigError
from repro.fuzzer.fuzzer import FuzzStats
from repro.fuzzer.triage import CrashDB
from repro.oracles.report import CrashReport


@pytest.fixture(scope="module")
def serial_result():
    return run_campaign(CampaignSpec(iterations=24, seed=1, jobs=1))


@pytest.fixture(scope="module")
def sharded_result():
    return run_campaign(CampaignSpec(iterations=24, seed=1, jobs=2))


class TestCampaignSpec:
    def test_shard_seed_derivation(self):
        spec = CampaignSpec(seed=7, jobs=3)
        assert [spec.shard_seed(k) for k in range(3)] == [
            7 * SEED_STRIDE,
            7 * SEED_STRIDE + 1,
            7 * SEED_STRIDE + 2,
        ]

    def test_shard_iterations_partition_budget(self):
        spec = CampaignSpec(iterations=10, jobs=4)
        parts = spec.shard_iterations()
        assert sum(parts) == 10 and parts == (3, 3, 2, 2)

    def test_patched_normalized(self):
        spec = CampaignSpec(patched=("b", "a", "b"))
        assert spec.patched == ("a", "b")

    def test_validation(self):
        with pytest.raises(ConfigError):
            CampaignSpec(jobs=0)
        with pytest.raises(ConfigError):
            CampaignSpec(iterations=-1)
        with pytest.raises(ConfigError):
            CampaignSpec(time_budget=-0.1)


class TestSerialParallelParity:
    def test_same_bug_id_set(self, serial_result, sharded_result):
        """A sharded campaign covers the same seed corpus, so at the same
        total budget it finds the same bug-id set as the serial run."""
        assert set(sharded_result.found_bug_ids) == set(serial_result.found_bug_ids)
        assert len(serial_result.found_table3) == 11

    def test_deterministic_per_shard(self):
        spec = CampaignSpec(iterations=24, seed=1, jobs=2)
        a, b = run_campaign(spec), run_campaign(spec)
        assert a.found_bug_ids == b.found_bug_ids
        assert a.crashes == b.crashes
        assert a.stats == b.stats
        assert [s.tests_run for s in a.shards] == [s.tests_run for s in b.shards]

    def test_shard_breakdown(self, sharded_result):
        assert len(sharded_result.shards) == 2
        assert [s.shard for s in sharded_result.shards] == [0, 1]
        assert sum(s.iterations for s in sharded_result.shards) == 24
        assert sum(s.tests_run for s in sharded_result.shards) == (
            sharded_result.stats.tests_run
        )

    def test_merged_coverage_is_union_not_sum(self, sharded_result):
        per_shard = [s.coverage for s in sharded_result.shards]
        assert sharded_result.stats.coverage <= sum(per_shard)
        assert sharded_result.stats.coverage >= max(per_shard)

    def test_serial_runs_in_process(self, serial_result):
        # jobs=1 keeps the full merged crash database (with reproducers).
        assert serial_result.crashdb is not None
        assert serial_result.spec.jobs == 1

    def test_time_budget_zero_runs_nothing(self):
        result = run_campaign(CampaignSpec(iterations=5, time_budget=0.0))
        assert result.stats.tests_run == 0


class TestFuzzStatsMerge:
    def test_associative(self):
        a = FuzzStats(stis_run=1, mtis_run=2, hints_computed=3, crashes=1)
        b = FuzzStats(stis_run=4, mtis_run=5, hangs=2, corpus_size=3)
        c = FuzzStats(stis_run=7, coverage=9, crashes=2)
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    def test_counters_sum(self):
        a = FuzzStats(stis_run=2, mtis_run=10)
        b = FuzzStats(stis_run=3, mtis_run=20)
        merged = a.merge(b)
        assert merged.tests_run == 35


def _db(*hits):
    """Build a CrashDB from (title, test_index) pairs."""
    db = CrashDB()
    for title, idx in hits:
        db.add(CrashReport(title=title, oracle="kasan", function="f"), idx)
    return db


def _shape(db):
    return {
        t: (r.count, r.first_test_index, r.bug_id) for t, r in db.records.items()
    }


class TestCrashDBMerge:
    def test_counts_sum_and_min_attribution(self):
        a = _db(("T", 9), ("T", 12), ("U", 3))
        b = _db(("T", 4))
        merged = a.merge(b)
        assert merged.records["T"].count == 3
        assert merged.records["T"].first_test_index == 4  # min across shards
        assert merged.records["U"].first_test_index == 3

    def test_pure(self):
        a, b = _db(("T", 5)), _db(("T", 2))
        a.merge(b)
        assert a.records["T"].first_test_index == 5  # inputs untouched
        assert b.records["T"].count == 1

    def test_associative(self):
        a = _db(("T", 9), ("U", 1))
        b = _db(("T", 4), ("V", 8))
        c = _db(("T", 6), ("U", 2), ("V", 3))
        assert _shape(a.merge(b).merge(c)) == _shape(a.merge(b.merge(c)))

    def test_bug_id_mapping_survives(self):
        title = "BUG: unable to handle kernel NULL pointer dereference in pipe_read"
        merged = _db((title, 7)).merge(_db((title, 2)))
        assert merged.records[title].bug_id == "t4_watch_queue"
        assert merged.found_bug_ids() == ["t4_watch_queue"]


class TestJsonRoundTrip:
    def test_lossless(self, sharded_result):
        restored = CampaignResult.from_json(sharded_result.to_json())
        assert restored == sharded_result
        assert restored.spec == sharded_result.spec
        assert restored.crashes == sharded_result.crashes
        assert restored.shards == sharded_result.shards
        assert restored.seconds == sharded_result.seconds

    def test_crashdb_not_serialized(self, serial_result):
        restored = CampaignResult.from_json(serial_result.to_json())
        assert restored.crashdb is None
        assert restored == serial_result  # crashdb excluded from equality

    def test_rejects_unknown_version(self, serial_result):
        import json

        payload = json.loads(serial_result.to_json())
        payload["version"] = 999
        with pytest.raises(ValueError):
            CampaignResult.from_json(json.dumps(payload))

    def test_summary_text(self, serial_result):
        text = serial_result.summary()
        assert "unique crash titles" in text
        assert "[t4_watch_queue]" in text
