"""Differential tests: the codegen tier vs decoded vs the reference.

PR 4's differential suite (``test_decode_differential.py``) proved the
decoded closures observationally equal to the reference interpreter.
This suite extends the same guarantee to the codegen tier: compiled
functions must produce byte-identical observables — syscall return
values, memory/shadow fingerprints, litmus outcomes, campaign stats,
crash identity, replay verdicts, fuel/steps accounting and error
messages — under every engine tier.  Anything less and the tier model
is not a pure optimization.
"""

import os

import pytest

from repro.config import KernelConfig
from repro.errors import ExecutionLimitExceeded, KirError
from repro.fuzzer.fuzzer import OzzFuzzer
from repro.fuzzer.sti import resolve_args
from repro.fuzzer.templates import seed_inputs
from repro.kernel.kernel import Kernel, KernelImage
from repro.kir import Builder, Program
from repro.kir.function import Program as KirProgram
from repro.litmus.programs import standard_suite
from repro.machine import Machine
from repro.mem.memory import DATA_BASE
from repro.oemu.instrument import instrument_program
from repro.trace.replayer import CrashArtifact, replay_artifact

SAMPLE_CRASH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "examples", "sample_crash.json"
)

#: The three tiers under test; ``auto`` is decoded+promotion and is
#: covered by the engine-tier unit tests and the e2e benchmark.
TIERS = ("reference", "decoded", "codegen")


@pytest.fixture(scope="module")
def images():
    return {
        tier: KernelImage(KernelConfig(engine=tier, snapshot_reset=False))
        for tier in TIERS
    }


def _loop_program() -> Program:
    b = Builder("spin", params=["n"])
    i = b.mov(0)
    acc = b.mov(0)
    top = b.label()
    b.bind(top)
    b.store(DATA_BASE, 0, i)
    v = b.load(DATA_BASE, 0)
    b.add(acc, v, dst=acc)
    b.add(i, 1, dst=i)
    b.blt(i, b.reg("n"), top)
    b.ret(acc)
    return Program([b.function()])


class TestSeedInputs:
    def test_syscall_observables_identical(self, images):
        """Every seed STI, run to completion on the unobserved fast path
        (where codegen actually engages): same retvals, memory world,
        shadow world and clock under all three tiers."""
        for sti in seed_inputs():
            worlds = {}
            for tier in TIERS:
                kernel = Kernel(images[tier])
                retvals = []
                for call in sti.calls:
                    retvals.append(
                        kernel.run_syscall(call.name, resolve_args(call, retvals))
                    )
                worlds[tier] = (
                    tuple(retvals),
                    kernel.memory.fingerprint(),
                    kernel.shadow.fingerprint(),
                    kernel.clock.now,
                )
            assert worlds["decoded"] == worlds["reference"], sti
            assert worlds["codegen"] == worlds["reference"], sti

    def test_codegen_tier_actually_compiled(self, images):
        """The parity above must not be vacuous: the codegen kernel
        promotes (binds compiled functions) while running the STIs."""
        kernel = Kernel(images["codegen"])
        for sti in seed_inputs():
            retvals = []
            for call in sti.calls:
                retvals.append(
                    kernel.run_syscall(call.name, resolve_args(call, retvals))
                )
        assert kernel.engine_counters.promotions > 0
        assert kernel.engine_counters.codegen_functions_bound > 0


class TestLitmus:
    @pytest.mark.parametrize("test", standard_suite(), ids=lambda t: t.name)
    def test_round_robin_outcomes_identical(self, test):
        """Each litmus program, stepped round-robin under every tier,
        produces the same outcome tuple and final memory contents."""
        program, _ = instrument_program(KirProgram(list(test.functions)))

        def run(tier):
            m = Machine(program, ncpus=len(test.functions), engine=tier)
            threads = [
                m.spawn(f.name, cpu=idx) for idx, f in enumerate(test.functions)
            ]
            for t in threads:
                m.oemu.thread_state(t.thread_id)  # pin window start at t=0
            pending = list(threads)
            while pending:
                for thread in list(pending):
                    if not m.interp.step(thread):
                        m.oemu.flush(thread.thread_id)
                        pending.remove(thread)
            return tuple(t.retval for t in threads), m.memory.fingerprint()

        outcomes = {tier: run(tier) for tier in TIERS}
        assert outcomes["decoded"] == outcomes["reference"]
        assert outcomes["codegen"] == outcomes["reference"]
        assert outcomes["reference"][0] in test.allowed


class TestReplay:
    @pytest.mark.parametrize("tier", TIERS)
    def test_sample_crash_replays_under_every_tier(self, tier):
        """The shipped artifact replays byte-for-byte whichever tier the
        replay image is built with (replay verdicts diff the full event
        schedule, so ``ok`` means byte-identical)."""
        artifact = CrashArtifact.load(SAMPLE_CRASH)
        verdict = replay_artifact(
            artifact,
            image=KernelImage(
                KernelConfig(
                    patched=frozenset(artifact.reproducer.patched),
                    engine=tier,
                    snapshot_reset=False,
                )
            ),
        )
        assert verdict.ok, (tier, verdict.render())


class TestCampaign:
    def test_stats_and_crashes_identical(self):
        """Same seed, same iteration count: every tier's campaign is
        observationally equal to the reference tier's."""
        results = {}
        for tier in TIERS:
            fuzzer = OzzFuzzer(KernelImage(KernelConfig(engine=tier)), seed=11)
            stats = fuzzer.run(30)
            results[tier] = (stats, frozenset(fuzzer.crashdb.unique_titles))
        assert results["decoded"] == results["reference"]
        assert results["codegen"] == results["reference"]
        assert results["reference"][0].tests_run > 0


class TestErrorParity:
    """Exceptions escaping generated code must match the reference
    byte-for-byte: type, message, and fuel/steps at the throw point."""

    def _run(self, program, entry, tier, *, args=(), fuel=10**9):
        m = Machine(program, engine=tier)
        thread = m.interp.spawn(entry, args, fuel=fuel)
        try:
            m.interp.run(thread)
            outcome = ("ok", thread.retval)
        except (KirError, ExecutionLimitExceeded) as exc:
            outcome = (type(exc).__name__, str(exc))
        return outcome, thread.steps, thread.fuel

    @pytest.mark.parametrize("tier", TIERS)
    def test_fuel_exhaustion_identical(self, tier):
        ref = self._run(_loop_program(), "spin", "reference", args=(10**9,), fuel=500)
        got = self._run(_loop_program(), "spin", tier, args=(10**9,), fuel=500)
        assert got == ref
        assert got[0][0] == "ExecutionLimitExceeded"

    @pytest.mark.parametrize("tier", TIERS)
    def test_undefined_register_identical(self, tier):
        b = Builder("oops")
        b.add(b.reg("ghost"), 1, dst=b.reg("x"))
        b.ret(b.reg("x"))
        program = Program([b.function()])
        ref = self._run(program, "oops", "reference")
        got = self._run(program, "oops", tier)
        assert got == ref
        assert got[0][0] == "KirError"
        assert "register %ghost undefined" in got[0][1]

    @pytest.mark.parametrize("tier", TIERS)
    def test_unknown_helper_identical(self, tier):
        b = Builder("callout")
        b.helper("no_such_helper", 1, dst=b.reg("r"))
        b.ret(b.reg("r"))
        program = Program([b.function()])
        ref = self._run(program, "callout", "reference")
        got = self._run(program, "callout", tier)
        assert got == ref
        assert got[0][0] == "KirError"
        assert "unknown helper" in got[0][1]
