"""Tests for register-provenance dependency tracking (paper Table 6)."""

import pytest

from repro.kir import Builder, Program
from repro.kir.insn import Load, Store
from repro.machine import Machine
from repro.mem.memory import DATA_BASE
from repro.oemu.deps import DependencyTracker
from repro.oemu.lkmm import DependencyKind

X = DATA_BASE
PTR = DATA_BASE + 0x40


def run_with_deps(build):
    b = Builder("f")
    build(b)
    b.ret()
    prog = Program([b.function()])
    m = Machine(prog, track_deps=True, with_oemu=False)
    m.run("f")
    func = prog.function("f")
    loads = [i.addr for i in func.insns if isinstance(i, Load)]
    stores = [i.addr for i in func.insns if isinstance(i, Store)]
    return m.deps, loads, stores


class TestDependencyKinds:
    def test_data_dependency(self):
        """r = *X; *Y = r  — the store's value derives from the load."""
        def build(b):
            v = b.load(X, 0)
            b.store(X, 8, v)

        deps, loads, stores = run_with_deps(build)
        assert deps.has_dependency(loads[0], stores[0], DependencyKind.DATA)

    def test_address_dependency_store(self):
        """p = *PTR; *p = 1 — the store's address derives from the load."""
        def build(b):
            b.store(PTR, 0, X)  # PTR points at X
            p = b.load(PTR, 0)
            b.store(p, 0, 1)

        deps, loads, stores = run_with_deps(build)
        assert deps.has_dependency(loads[0], stores[1], DependencyKind.ADDRESS)

    def test_address_dependency_load(self):
        """p = *PTR; v = *p — Table 6: address deps also cover loads."""
        def build(b):
            b.store(PTR, 0, X)
            p = b.load(PTR, 0)
            b.load(p, 0)

        deps, loads, _ = run_with_deps(build)
        assert deps.has_dependency(loads[0], loads[1], DependencyKind.ADDRESS)

    def test_control_dependency(self):
        """if (*X) *Y = 1 — the store is control-dependent on the load."""
        def build(b):
            v = b.load(X, 0)
            skip = b.label()
            b.bne(v, 0, skip)
            b.store(X, 8, 1)
            b.bind(skip)

        deps, loads, stores = run_with_deps(build)
        assert deps.has_dependency(loads[0], stores[0], DependencyKind.CONTROL)

    def test_dependency_through_arithmetic(self):
        """Dependencies propagate through ALU ops (v+1 still depends)."""
        def build(b):
            v = b.load(X, 0)
            w = b.add(v, 1)
            b.store(X, 8, w)

        deps, loads, stores = run_with_deps(build)
        assert deps.has_dependency(loads[0], stores[0], DependencyKind.DATA)

    def test_dependency_through_mov(self):
        def build(b):
            v = b.load(X, 0)
            w = b.mov(v)
            b.store(X, 8, w)

        deps, loads, stores = run_with_deps(build)
        assert deps.has_dependency(loads[0], stores[0], DependencyKind.DATA)

    def test_overwrite_kills_taint(self):
        """Reassigning the register breaks the dependency."""
        def build(b):
            v = b.load(X, 0)
            b.mov(7, dst=v)  # overwrite with a constant
            b.store(X, 8, v)

        deps, loads, stores = run_with_deps(build)
        assert not deps.has_dependency(loads[0], stores[0], DependencyKind.DATA)

    def test_independent_accesses_have_no_edge(self):
        def build(b):
            b.load(X, 0)
            b.store(X + 0x20, 0, 5)

        deps, loads, stores = run_with_deps(build)
        assert not deps.edges_between(loads[0], stores[0])

    def test_reset(self):
        tracker = DependencyTracker()
        tracker.on_load(1, "r", None)
        tracker.on_store(2, "r", None)
        assert tracker.edges
        tracker.reset()
        assert not tracker.edges and not tracker.taint_of("r")
