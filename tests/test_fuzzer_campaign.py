"""End-to-end fuzzing campaign tests (paper Figure 6 / §6.1)."""

import pytest

from repro.config import KernelConfig
from repro.fuzzer import OzzFuzzer
from repro.kernel import bugs
from repro.kernel.kernel import KernelImage


@pytest.fixture(scope="module")
def buggy_image():
    return KernelImage(KernelConfig())


@pytest.fixture(scope="module")
def seed_campaign(buggy_image):
    fuzzer = OzzFuzzer(buggy_image, seed=1)
    fuzzer.run(22)  # one pass over the seed corpus
    return fuzzer


class TestSeedCampaign:
    def test_finds_all_table3_bugs(self, seed_campaign):
        assert len(seed_campaign.crashdb.found_table3()) == 11

    def test_finds_all_reproducible_table4_bugs(self, seed_campaign):
        found = set(seed_campaign.crashdb.found_table4())
        expected = {b.bug_id for b in bugs.table4_bugs() if b.reproducible}
        assert found == expected

    def test_sbitmap_not_found(self, seed_campaign):
        assert "t4_sbitmap" not in seed_campaign.crashdb.found_bug_ids()

    def test_coverage_and_corpus_grow(self, seed_campaign):
        assert seed_campaign.stats.coverage > 300
        assert seed_campaign.stats.corpus_size > 10

    def test_crash_reports_carry_ooo_context(self, seed_campaign):
        for rec in seed_campaign.crashdb.records.values():
            if rec.bug_id and rec.bug_id.startswith("t3"):
                report = rec.first_report
                assert report.hypothetical_barrier is not None
                assert report.reordered_insns

    def test_deterministic_given_seed(self, buggy_image):
        a = OzzFuzzer(buggy_image, seed=5)
        b = OzzFuzzer(buggy_image, seed=5)
        a.run(6)
        b.run(6)
        assert a.crashdb.unique_titles == b.crashdb.unique_titles
        assert a.stats.mtis_run == b.stats.mtis_run


class TestPatchedCampaign:
    def test_fully_patched_kernel_is_clean(self):
        image = KernelImage(KernelConfig(patched=frozenset(bugs.all_bug_ids())))
        fuzzer = OzzFuzzer(image, seed=1)
        fuzzer.run(22)
        assert fuzzer.crashdb.unique_titles == []

    def test_partially_patched_kernel_finds_the_rest(self):
        patched = {"t3_rds_xmit", "t3_tls_setsockopt", "t4_watch_queue"}
        image = KernelImage(KernelConfig(patched=frozenset(patched)))
        fuzzer = OzzFuzzer(image, seed=1)
        fuzzer.run(22)
        found = set(fuzzer.crashdb.found_bug_ids())
        assert not (found & patched)
        assert "t3_gsm_dlci" in found  # unpatched bugs still there


class TestGenerativePhase:
    def test_mutation_phase_keeps_finding(self, buggy_image):
        """After the seeds are exhausted the fuzzer generates/mutates and
        keeps triggering bugs rather than stalling."""
        fuzzer = OzzFuzzer(buggy_image, seed=11)
        fuzzer.run(40)  # 22 seeds + 18 generated/mutated
        assert fuzzer.stats.stis_run == 40
        assert fuzzer.stats.mtis_run > 40
        assert len(fuzzer.crashdb.found_table3()) == 11

    def test_no_seed_mode_runs(self, buggy_image):
        fuzzer = OzzFuzzer(buggy_image, seed=2, use_seeds=False)
        fuzzer.run(10)
        assert fuzzer.stats.stis_run == 10
