"""Boot-snapshot reset: `Kernel.reset()`, `KernelPool`, engine counters.

The reset is the second prong of the execution-engine optimization: a
kernel boots once, snapshots its world, and every later test rewinds
via a dirty-tracked restore instead of a fresh boot.  The contract is
behavioral equivalence — a reset kernel is indistinguishable from a
freshly booted one in every observable (memory, shadow, allocator,
clock, thread ids, syscall results).
"""

import pytest

from repro.config import KernelConfig
from repro.errors import ConfigError
from repro.fuzzer.fuzzer import OzzFuzzer
from repro.kernel.kernel import Kernel, KernelImage, KernelPool
from repro.oemu.profiler import ENGINE_COUNTERS, Profiler
from repro.trace.events import Step
from repro.trace.recorder import TraceRecorder

DIRTYING_CALLS = [
    ("fs_open", (1,)),
    ("fs_write", (0, 42)),
    ("socket", ()),
    ("fs_close", (0,)),
]


@pytest.fixture(scope="module")
def image():
    return KernelImage(KernelConfig())


def _world(kernel):
    return (
        kernel.memory.fingerprint(),
        kernel.shadow.fingerprint(),
        kernel.clock.now,
        kernel.allocator.total_allocs,
        kernel.allocator.total_frees,
        kernel._next_thread,
        dict(kernel.fdtable),
        kernel.next_fd,
    )


def _dirty(kernel):
    for name, args in DIRTYING_CALLS:
        try:
            kernel.run_syscall(name, args)
        except Exception:
            pass  # a crash still dirties state; reset must clean it up


class TestKernelReset:
    def test_reset_restores_boot_world(self, image):
        kernel = Kernel(image)
        boot = _world(kernel)
        _dirty(kernel)
        assert _world(kernel) != boot, "dirtying calls had no effect"
        restored = kernel.reset()
        assert restored > 0
        assert _world(kernel) == boot

    def test_reset_matches_fresh_boot(self, image):
        kernel = Kernel(image)
        _dirty(kernel)
        kernel.reset()
        assert _world(kernel) == _world(Kernel(image))

    def test_post_reset_syscalls_match_fresh_kernel(self, image):
        recycled = Kernel(image)
        _dirty(recycled)
        recycled.reset()
        fresh = Kernel(image)
        for name, args in DIRTYING_CALLS:
            assert recycled.run_syscall(name, args) == fresh.run_syscall(name, args)
        assert _world(recycled) == _world(fresh)

    def test_reset_is_repeatable(self, image):
        kernel = Kernel(image)
        boot = _world(kernel)
        for _ in range(3):
            _dirty(kernel)
            kernel.reset()
            assert _world(kernel) == boot

    def test_reset_requires_snapshot_config(self):
        kernel = Kernel(KernelImage(KernelConfig(snapshot_reset=False)))
        with pytest.raises(ConfigError):
            kernel.reset()

    def test_reset_detaches_per_run_observers(self, image):
        """kcov and a post-boot trace sink are per-test attachments; the
        reset drops both and the interpreter's hoisted copies follow."""
        kernel = Kernel(image)
        recorder = TraceRecorder()
        kernel.trace = recorder
        from repro.fuzzer.kcov import KCov

        kernel.kcov = KCov()
        kernel.reset()
        assert kernel.kcov is None
        assert kernel.trace is kernel._boot_trace
        assert not kernel.interp._trace.active

    def test_trace_swap_after_reset_takes_effect(self, image):
        """Attaching a recorder *after* a reset re-binds the step loop —
        the invalidation contract of the hoisted attributes."""
        kernel = Kernel(image)
        _dirty(kernel)
        kernel.reset()
        recorder = TraceRecorder()
        kernel.trace = recorder
        kernel.run_syscall("fs_open", (1,))
        steps = [e for e in recorder.events() if isinstance(e, Step)]
        assert steps, "no Step events reached the post-reset recorder"


class TestKernelPool:
    def test_boots_once_then_resets(self, image):
        pool = KernelPool(image)
        ENGINE_COUNTERS.reset()
        first = pool.acquire()
        assert ENGINE_COUNTERS.boots == 1
        assert ENGINE_COUNTERS.resets == 0
        _dirty(first)
        again = pool.acquire()
        assert again is first
        assert ENGINE_COUNTERS.boots == 1
        assert ENGINE_COUNTERS.resets == 1
        assert ENGINE_COUNTERS.dirty_pages_restored > 0

    def test_profiler_swap(self, image):
        pool = KernelPool(image)
        profiler = Profiler()
        kernel = pool.acquire(profiler=profiler)
        assert kernel.profiler is profiler
        assert kernel.oemu.profiler is profiler
        kernel = pool.acquire()  # detach
        assert kernel.profiler is None
        assert kernel.oemu.profiler is None

    def test_requires_snapshot_config(self):
        with pytest.raises(ConfigError):
            KernelPool(KernelImage(KernelConfig(snapshot_reset=False)))


class TestCampaignEquivalence:
    def test_snapshot_reset_does_not_change_outcomes(self):
        """Same seed, reset pooling on vs off (decoded dispatch in both):
        identical stats and crash sets — reset is invisible to the fuzzer."""
        results = []
        for snapshot_reset in (True, False):
            fuzzer = OzzFuzzer(
                KernelImage(KernelConfig(snapshot_reset=snapshot_reset)), seed=23
            )
            stats = fuzzer.run(25)
            results.append((stats, frozenset(fuzzer.crashdb.unique_titles)))
        (on_stats, on_titles), (off_stats, off_titles) = results
        assert on_stats == off_stats
        assert on_titles == off_titles
        assert on_stats.tests_run > 0
