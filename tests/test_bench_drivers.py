"""Tests for the bench drivers (they back every evaluation table)."""

import pytest

from repro.bench.campaign import (
    measure_throughput,
    reproduce_bug,
    run_table3_campaign,
    sti_for_bug,
)
from repro.bench.lmbench import WORKLOADS, run_lmbench
from repro.bench.tables import fmt_ratio, fmt_us, render_table
from repro.config import KernelConfig
from repro.kernel import bugs


class TestTables:
    def test_render_alignment(self):
        text = render_table("T", ["a", "bb"], [["x", 1], ["yyyy", 22]], note="n")
        lines = text.splitlines()
        assert lines[0] == "== T =="
        widths = {len(l) for l in lines[1:-1]}
        assert len(widths) == 1  # all rows padded to one width
        assert lines[-1] == "n"

    def test_render_pads_missing_cells(self):
        text = render_table("T", ["a", "b", "c"], [["only"]])
        assert "only" in text

    def test_formatters(self):
        assert fmt_ratio(2.5) == "2.5x"
        assert fmt_us(0.000123) == "123.0"


class TestLmbenchDriver:
    def test_rows_cover_paper_mix(self):
        names = [w.name for w in WORKLOADS]
        for required in ("null", "stat", "open/close", "ctxsw 2p/0k", "pipe",
                         "unix", "fork", "mmap"):
            assert required in names

    def test_small_run_produces_rows(self):
        rows = run_lmbench(reps=2, workloads=WORKLOADS[:2])
        assert len(rows) == 2
        for r in rows:
            assert r.plain_us > 0 and r.oemu_us > 0 and r.overhead > 0


class TestCampaignDrivers:
    def test_reproduce_bug_counts_tests(self):
        result = reproduce_bug(bugs.get("t4_watch_queue"))
        assert result.reproduced and result.n_tests >= 2

    def test_hint_order_variants_run(self):
        spec = bugs.get("t4_watch_queue")
        for order in ("max", "min", "random"):
            assert reproduce_bug(spec, hint_order=order).reproduced

    def test_reproduce_respects_max_tests(self):
        spec = bugs.get("t4_sbitmap")  # never reproduces
        result = reproduce_bug(spec, max_tests=3)
        assert not result.reproduced and result.n_tests <= 3

    def test_table3_campaign_driver(self):
        result = run_table3_campaign(seed=1, iterations=22)
        assert len(result.found_table3) == 11
        assert result.tests_run > 22
        assert all(v >= 1 for v in result.first_hit_tests.values())

    def test_throughput_driver(self):
        tp = measure_throughput(iterations=3, seed=9)
        assert tp.ozz_tests_per_sec > 0
        assert tp.baseline_tests_per_sec > 0


class TestStiForBug:
    @pytest.mark.parametrize("spec", bugs.all_bugs(), ids=lambda s: s.bug_id)
    def test_input_is_well_formed(self, spec):
        sti, (i, j) = sti_for_bug(spec)
        assert j == i + 1 == len(sti.calls) - 1
        names = {c.name for c in sti.calls}
        assert spec.victim_syscall in names and spec.observer_syscall in names

    def test_setup_args_threaded(self):
        from repro.fuzzer.sti import ResourceRef

        sti, _ = sti_for_bug(bugs.get("t3_tls_getsockopt"))
        # tls_init consumes the socket's fd via a ResourceRef.
        init = next(c for c in sti.calls if c.name == "tls_init")
        assert init.args == (ResourceRef(0),)
