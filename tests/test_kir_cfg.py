"""Unit tests for the KIR CFG builder, dataflow engine and reaching defs."""

import pytest

from repro.errors import KirError
from repro.kir import Builder, Cond, Program
from repro.kir.cfg import CFG
from repro.kir.dataflow import SetUnionProblem, solve
from repro.kir.validate import validate_function, validate_program
from repro.analysis.reaching import (
    PARAM_DEF,
    reaching_definitions,
    undefined_reads,
)


def straight_line():
    b = Builder("f", ["p"])
    b.mov(1, "x")
    b.mov(2, "y")
    b.ret("x")
    return b.function()


def diamond(define_on_both=True):
    """if (p) x = 1 else [x = 2 | skip]; return x"""
    b = Builder("f", ["p"])
    else_, join = b.label("else"), b.label("join")
    b.beq("p", 0, else_)
    b.mov(1, "x")
    b.jmp(join)
    b.bind(else_)
    if define_on_both:
        b.mov(2, "x")
    else:
        b.nop()
    b.bind(join)
    b.ret("x")
    return b.function()


def loop():
    """i = 0; while (i < p) i = i + 1; return i"""
    b = Builder("f", ["p"])
    head, done = b.label("head"), b.label("done")
    b.mov(0, "i")
    b.bind(head)
    b.bge("i", "p", done)
    b.add("i", 1, "i")
    b.jmp(head)
    b.bind(done)
    b.ret("i")
    return b.function()


class TestCfgConstruction:
    def test_straight_line_is_one_block(self):
        cfg = CFG.build(straight_line())
        assert len(cfg.blocks) == 1
        block = cfg.blocks[0]
        assert (block.start, block.end) == (0, 3)
        assert block.succs == []

    def test_diamond_shape(self):
        func = diamond()
        cfg = CFG.build(func)
        # entry(branch) / then / else / join
        assert len(cfg.blocks) == 4
        entry = cfg.blocks[0]
        assert len(entry.succs) == 2
        join = cfg.block_of[len(func.insns) - 1]
        assert sorted(cfg.blocks[join].preds) != []
        assert len(cfg.blocks[join].preds) == 2

    def test_loop_has_backedge(self):
        func = loop()
        cfg = CFG.build(func)
        head_block = cfg.block_of[1]  # the bge instruction
        # Some block's successor list points back at the loop head.
        assert any(
            head_block in blk.succs for blk in cfg.blocks if blk.index != head_block - 1
        )

    def test_reaches(self):
        func = diamond()
        cfg = CFG.build(func)
        last = len(func.insns) - 1
        assert cfg.reaches(0, last)
        assert not cfg.reaches(last, 0)
        # then-arm and else-arm do not reach each other
        then_i, else_i = 1, 3
        assert not cfg.reaches(then_i, else_i)
        assert not cfg.reaches(else_i, then_i)

    def test_reverse_postorder_starts_at_entry(self):
        cfg = CFG.build(diamond())
        order = cfg.reverse_postorder()
        assert order[0] == 0
        assert sorted(order) == [b.index for b in cfg.blocks]

    def test_insn_succs_of_ret_is_empty(self):
        func = straight_line()
        cfg = CFG.build(func)
        assert cfg.insn_succs(len(func.insns) - 1) == ()


class _ReachableInsns(SetUnionProblem):
    """Toy forward problem: the set of instruction indices seen so far."""

    def transfer(self, insn, index, fact):
        return fact | {index}


class TestDataflowEngine:
    def test_forward_fixpoint_on_loop(self):
        func = loop()
        result = solve(CFG.build(func), _ReachableInsns())
        # the exit block's in-fact contains the loop body (via the backedge)
        ret_index = len(func.insns) - 1
        fact = result.fact_before(ret_index)
        assert 2 in fact and 3 in fact  # add / jmp inside the loop
        assert result.iterations >= 2   # needed more than one pass

    def test_facts_are_per_program_point(self):
        func = straight_line()
        result = solve(CFG.build(func), _ReachableInsns())
        assert result.fact_before(0) == frozenset()
        assert result.fact_before(2) == frozenset({0, 1})


class TestReachingDefinitions:
    def test_params_reach_entry(self):
        func = straight_line()
        result = reaching_definitions(func)
        assert ("p", PARAM_DEF) in result.fact_before(0)

    def test_kill_replaces_definition(self):
        b = Builder("f", [])
        b.mov(1, "x")
        b.mov(2, "x")
        b.ret("x")
        result = reaching_definitions(b.function())
        fact = result.fact_before(2)
        assert ("x", 1) in fact and ("x", 0) not in fact

    def test_both_arms_reach_join(self):
        func = diamond(define_on_both=True)
        result = reaching_definitions(func)
        ret_index = len(func.insns) - 1
        defs_of_x = {d for d in result.fact_before(ret_index) if d[0] == "x"}
        assert len(defs_of_x) == 2


class TestUseBeforeDef:
    def test_straight_line_read_before_write_flagged(self):
        # Regression for the seed validator's approximation: %x IS
        # written in the function — but only after the read.
        b = Builder("f", [])
        b.mov("x", "y")   # reads %x before any definition
        b.mov(1, "x")     # later write used to make the old check pass
        b.ret("y")
        func = b.function()
        assert any(reg == "x" for _, reg in undefined_reads(func))
        problems = validate_function(func)
        assert any("reads undefined register %x" in p for p in problems)

    def test_straight_line_read_before_write_raises_at_build(self):
        b = Builder("f", [])
        b.mov("x", "y")
        b.mov(1, "x")
        b.ret("y")
        with pytest.raises(KirError, match="undefined register"):
            validate_program(Program([b.function()]))

    def test_one_arm_definition_is_accepted(self):
        # May-analysis: a definition on one path suffices (no false
        # positives on the diamond-with-default idiom).
        func = diamond(define_on_both=False)
        assert undefined_reads(func) == []

    def test_params_and_writes_are_defined(self):
        assert undefined_reads(straight_line()) == []
        assert undefined_reads(loop()) == []

    def test_read_of_never_written_register_flagged(self):
        b = Builder("f", [])
        b.mov("ghost", "y")
        b.ret("y")
        reads = undefined_reads(b.function())
        assert reads == [(0, "ghost")]
