"""Unit tests for the KIR instruction set, builder, linker and interpreter."""

import pytest

from repro.errors import KirError
from repro.kir import Annot, Builder, Cond, Program, Struct
from repro.kir.disasm import disassemble_function, source_context
from repro.kir.function import INSN_SIZE
from repro.kir.insn import BinOpKind, Imm, Reg, as_operand, branch_taken, eval_binop
from repro.kir.validate import validate_program
from repro.machine import Machine
from repro.mem.memory import DATA_BASE


def build_machine(*funcs, **kwargs):
    return Machine(Program(list(funcs)), **kwargs)


class TestOperands:
    def test_as_operand_coercions(self):
        assert as_operand(5) == Imm(5)
        assert as_operand("r1") == Reg("r1")
        assert as_operand(Imm(7)) == Imm(7)

    def test_as_operand_rejects_junk(self):
        with pytest.raises(TypeError):
            as_operand(3.14)

    def test_negative_immediate_wraps(self):
        assert as_operand(-1) == Imm((1 << 64) - 1)


class TestAlu:
    @pytest.mark.parametrize(
        "op,lhs,rhs,expected",
        [
            (BinOpKind.ADD, 2, 3, 5),
            (BinOpKind.SUB, 2, 3, (1 << 64) - 1),
            (BinOpKind.MUL, 1 << 63, 2, 0),
            (BinOpKind.AND, 0b1100, 0b1010, 0b1000),
            (BinOpKind.OR, 0b1100, 0b1010, 0b1110),
            (BinOpKind.XOR, 0b1100, 0b1010, 0b0110),
            (BinOpKind.SHL, 1, 8, 256),
            (BinOpKind.SHR, 256, 8, 1),
            (BinOpKind.EQ, 4, 4, 1),
            (BinOpKind.NE, 4, 4, 0),
            (BinOpKind.LTU, 3, 4, 1),
            (BinOpKind.GEU, 4, 4, 1),
        ],
    )
    def test_eval_binop(self, op, lhs, rhs, expected):
        assert eval_binop(op, lhs, rhs) == expected

    def test_branch_taken_unsigned(self):
        assert branch_taken(Cond.GTU, (1 << 64) - 1, 0)
        assert not branch_taken(Cond.LTU, (1 << 64) - 1, 0)


class TestStruct:
    def test_offsets_and_alignment(self):
        s = Struct("s", [("a", 1), ("b", 8), ("c", 4), ("d", 8, 4)])
        assert s.a == 0
        assert s.b == 8  # aligned up from 1
        assert s.c == 16
        assert s.d == 24
        assert s.size == 24 + 32

    def test_array_elem(self):
        s = Struct("s", [("arr", 8, 4)])
        assert s.elem("arr", 2) == 16
        with pytest.raises(KirError):
            s.elem("arr", 4)

    def test_unknown_field(self):
        s = Struct("s", [("a", 8)])
        with pytest.raises(AttributeError):
            s.missing

    def test_duplicate_field_rejected(self):
        with pytest.raises(KirError):
            Struct("s", [("a", 8), ("a", 8)])


def simple_add_func():
    b = Builder("add2", params=["x", "y"])
    total = b.add("x", "y")
    b.ret(total)
    return b.function()


class TestInterpreterBasics:
    def test_run_simple_function(self):
        m = build_machine(simple_add_func())
        assert m.run("add2", (2, 40)) == 42

    def test_loop_sums_to_n(self):
        b = Builder("sum_to", params=["n"])
        b.mov(0, dst="acc")
        b.mov(0, dst="i")
        top = b.label()
        done = b.label()
        b.bind(top)
        b.bge("i", "n", done)
        b.add("acc", "i", dst="acc")
        b.add("i", 1, dst="i")
        b.jmp(top)
        b.bind(done)
        b.ret("acc")
        m = build_machine(b.function())
        assert m.run("sum_to", (10,)) == 45

    def test_direct_call_and_return_value(self):
        b = Builder("outer", params=["a"])
        r = b.call("add2", "a", 10)
        b.ret(r)
        m = build_machine(simple_add_func(), b.function())
        assert m.run("outer", (5,)) == 15

    def test_indirect_call_through_pointer(self):
        b = Builder("caller", params=["fptr"])
        r = b.icall("fptr", 1, 2)
        b.ret(r)
        m = build_machine(simple_add_func(), b.function())
        target = m.program.func_addr("add2")
        assert m.run("caller", (target,)) == 3

    def test_memory_round_trip(self):
        b = Builder("rw", params=["addr"])
        b.store("addr", 0, 0xDEAD, size=4)
        v = b.load("addr", 0, size=4)
        b.ret(v)
        m = build_machine(b.function())
        assert m.run("rw", (DATA_BASE,)) == 0xDEAD

    def test_small_sizes_truncate(self):
        b = Builder("trunc", params=["addr"])
        b.store("addr", 0, 0x1FF, size=1)
        v = b.load("addr", 0, size=1)
        b.ret(v)
        m = build_machine(b.function())
        assert m.run("trunc", (DATA_BASE,)) == 0xFF

    def test_undefined_register_raises(self):
        b = Builder("bad")
        b.ret("never_set")
        m = build_machine(b.function())
        with pytest.raises(KirError, match="undefined"):
            m.run("bad")

    def test_fuel_exhaustion(self):
        from repro.errors import ExecutionLimitExceeded

        b = Builder("spin")
        top = b.label()
        b.bind(top)
        b.jmp(top)
        b.ret()
        m = build_machine(b.function())
        thread = m.spawn("spin")
        thread.fuel = 100
        with pytest.raises(ExecutionLimitExceeded):
            m.interp.run(thread)


class TestLinking:
    def test_addresses_unique_and_resolvable(self):
        f1, f2 = simple_add_func(), Builder("f2")
        f2.ret(0)
        prog = Program([f1, f2.function()])
        addrs = [i.addr for i in prog.all_insns()]
        assert len(addrs) == len(set(addrs))
        for func in prog.functions.values():
            for idx, insn in enumerate(func.insns):
                got_func, got_idx = prog.resolve_addr(insn.addr)
                assert got_func is func and got_idx == idx

    def test_describe_addr(self):
        prog = Program([simple_add_func()])
        assert prog.describe_addr(prog.func_addr("add2")) == "add2+0"

    def test_unknown_call_rejected_at_link(self):
        from repro.errors import LinkError

        b = Builder("f")
        b.call("nonexistent")
        b.ret()
        with pytest.raises(LinkError):
            Program([b.function()])

    def test_func_pointer_resolution(self):
        prog = Program([simple_add_func()])
        assert prog.resolve_func_pointer(prog.func_addr("add2")) is not None
        assert prog.resolve_func_pointer(12345) is None


class TestValidation:
    def test_missing_ret_detected(self):
        from repro.kir.function import Function
        from repro.kir.insn import Nop

        func = Function("f", (), [Nop()])
        prog = Program([func])
        with pytest.raises(KirError, match="ret"):
            validate_program(prog)

    def test_undefined_register_detected_statically(self):
        b = Builder("f")
        b.add("ghost", 1)
        b.ret()
        prog = Program([b.function()])
        with pytest.raises(KirError, match="ghost"):
            validate_program(prog)

    def test_unknown_helper_detected(self):
        b = Builder("f")
        b.helper_void("no_such_helper")
        b.ret()
        prog = Program([b.function()])
        with pytest.raises(KirError, match="no_such_helper"):
            validate_program(prog, helper_names=set())


class TestDisasm:
    def test_disassembly_mentions_every_insn(self):
        func = simple_add_func()
        Program([func])
        text = disassemble_function(func)
        assert "add2" in text and "ret" in text

    def test_source_context_marks_target(self):
        prog = Program([simple_add_func()])
        ctx = source_context(prog, prog.func_addr("add2"))
        assert "=>" in ctx
