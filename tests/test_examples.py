"""Smoke tests: every shipped example runs to completion.

Examples are documentation that executes; a broken one is a bug.  Each
``main()`` contains its own assertions about the paper behaviour it
demonstrates, so running them is also a behavioural check.
"""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(os.path.dirname(__file__)), "examples")

EXAMPLES = [
    "quickstart",
    "case_study_tls",
    "litmus_explorer",
    "rust_relaxed",
    "reproduce_known_bugs",
    "hardware_concurrency",
]


def load_example(name):
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"


def test_fuzz_campaign_example(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["fuzz_campaign.py", "22", "1"])
    module = load_example("fuzz_campaign")
    module.main()
    out = capsys.readouterr().out
    assert "Table 3 bugs found: 11/11" in out
