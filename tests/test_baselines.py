"""Tests for the comparison baselines (§6.2 in-vitro, §6.3.2 Syzkaller,
§6.4 OFence)."""

import pytest

from repro.config import KernelConfig
from repro.fuzzer.baselines import (
    InVitroAnalyzer,
    OFenceAnalyzer,
    SyzkallerBaseline,
)
from repro.fuzzer.sti import Call, ResourceRef, STI, profile_sti
from repro.fuzzer.templates import seed_inputs
from repro.kernel import bugs
from repro.kernel.kernel import KernelImage


@pytest.fixture(scope="module")
def plain_image():
    return KernelImage(KernelConfig(instrumented=False))


@pytest.fixture(scope="module")
def buggy_image():
    return KernelImage(KernelConfig())


class TestSyzkallerBaseline:
    def test_rejects_instrumented_image(self, buggy_image):
        with pytest.raises(ValueError):
            SyzkallerBaseline(buggy_image)

    def test_runs_seed_corpus(self, plain_image):
        baseline = SyzkallerBaseline(plain_image, seed=0)
        baseline.run_seeds(rounds=1)
        assert baseline.stats.stis_run == len(seed_inputs())
        assert baseline.stats.pair_tests > 0

    def test_finds_no_seeded_ooo_bugs(self, plain_image):
        """The paper's core argument: interleaving-only fuzzing cannot
        reach bugs that need memory access reordering."""
        baseline = SyzkallerBaseline(plain_image, seed=4)
        baseline.run_seeds(rounds=2)
        seeded = {b.title for b in bugs.all_bugs()}
        assert not (set(baseline.crashdb.unique_titles) & seeded)

    def test_kernel_reuse_until_crash(self, plain_image):
        baseline = SyzkallerBaseline(plain_image, seed=0)
        baseline.fuzz_one(seed_inputs()[0])
        k1 = baseline._live_kernel
        baseline.fuzz_one(seed_inputs()[1])
        assert baseline._live_kernel is k1  # same VM across tests


class TestInVitro:
    def test_flags_candidates_on_rds(self, buggy_image):
        sti = STI((Call("rds_socket"), Call("rds_sendmsg", (1,)), Call("rds_sendmsg", (0,))))
        profile = profile_sti(buggy_image, sti)
        analyzer = InVitroAnalyzer()
        candidates = analyzer.analyze_pair(
            profile.profiles[1].events, profile.profiles[2].events
        )
        assert candidates
        assert any(c.kind == "store-store" for c in candidates)

    def test_cannot_confirm(self):
        assert InVitroAnalyzer.can_confirm_consequences is False

    def test_no_shared_memory_no_candidates(self, buggy_image):
        sti = STI((Call("null"), Call("vlan_add")))
        profile = profile_sti(buggy_image, sti)
        candidates = InVitroAnalyzer().analyze_pair(
            profile.profiles[0].events, profile.profiles[1].events
        )
        assert candidates == []


class TestOFence:
    @pytest.fixture(scope="class")
    def analyzer(self, plain_image):
        return OFenceAnalyzer(plain_image.plain_program)

    def test_verdicts_match_registry(self, analyzer, plain_image):
        for spec in bugs.table3_bugs():
            assert analyzer.detects_bug(spec.bug_id, plain_image) == spec.ofence_pattern, spec.bug_id

    def test_paper_headline_8_of_11(self, analyzer, plain_image):
        undetected = sum(
            not analyzer.detects_bug(b.bug_id, plain_image) for b in bugs.table3_bugs()
        )
        assert undetected == 8

    def test_inconsistent_writer_found_in_xsk_bind(self, analyzer):
        findings = analyzer.inconsistent_writers()
        assert any(f.anchor_function == "sys_xsk_bind" for f in findings)

    def test_unpaired_wmb_points_at_smc_release(self, analyzer):
        findings = analyzer.unpaired_wmb()
        assert any(
            f.anchor_function == "sys_smc_accept" and f.missing_in == "sys_smc_release"
            for f in findings
        )

    def test_indirect_only_functions_out_of_reach(self, analyzer):
        """tls_getsockopt is only reachable through the proto table's
        function pointers; static pairing cannot anchor there."""
        assert "tls_getsockopt" not in analyzer._direct
        assert "sys_tls_getsockopt" in analyzer._direct

    def test_patched_kernel_has_fewer_findings(self, analyzer):
        patched_image = KernelImage(
            KernelConfig(instrumented=False, patched=frozenset(bugs.all_bug_ids()))
        )
        patched = OFenceAnalyzer(patched_image.plain_program)
        # Patched readers gained their barriers, so the unpaired-wmb
        # pairs that pointed into bug paths disappear.
        before = {(f.anchor_function, f.missing_in) for f in analyzer.unpaired_wmb()}
        after = {(f.anchor_function, f.missing_in) for f in patched.unpaired_wmb()}
        assert ("sys_smc_accept", "sys_smc_release") in before
        assert ("sys_smc_accept", "sys_smc_release") not in after
