"""Tests for reproducer serialization/replay and crash minimization."""

import pytest

from repro.bench.campaign import sti_for_bug
from repro.config import KernelConfig
from repro.fuzzer.hints import calculate_hints
from repro.fuzzer.minimize import minimize, minimize_reorder_set
from repro.fuzzer.mti import MTI, run_mti
from repro.fuzzer.reproducer import Reproducer
from repro.fuzzer.sti import Call, STI, profile_sti
from repro.kernel import KernelImage, bugs


@pytest.fixture(scope="module")
def image():
    return KernelImage(KernelConfig())


@pytest.fixture(scope="module")
def figure1_crash(image):
    """A crashing MTI for the Figure 1 bug, found the OZZ way."""
    spec = bugs.get("t4_watch_queue")
    sti, pair = sti_for_bug(spec)
    profile = profile_sti(image, sti)
    hints = calculate_hints(profile.profiles[pair[0]], profile.profiles[pair[1]])
    for hint in hints:
        if hint.barrier_type != "st":
            continue
        result = run_mti(image, MTI(sti, pair, hint))
        if result.crashed and result.crash.title == spec.title:
            return result
    pytest.fail("setup: figure-1 bug did not reproduce")


class TestReproducer:
    def test_round_trip_json(self, figure1_crash):
        repro = Reproducer.from_result(figure1_crash)
        again = Reproducer.from_json(repro.to_json())
        assert again == repro

    def test_replay_retriggers(self, figure1_crash, image):
        repro = Reproducer.from_result(figure1_crash)
        assert repro.still_triggers(image)

    def test_replay_against_patched_kernel_validates_fix(self, figure1_crash):
        repro = Reproducer.from_result(figure1_crash)
        patched = KernelImage(KernelConfig(patched=frozenset({"t4_watch_queue"})))
        assert not repro.still_triggers(patched)

    def test_describe_resolves_addresses(self, figure1_crash, image):
        repro = Reproducer.from_result(figure1_crash)
        text = repro.describe(image)
        assert "post_one_notification" in text
        assert "pipe_read" in text or "watch_queue" in text

    def test_from_non_crash_rejected(self, image):
        sti = STI((Call("null"), Call("getpid")))
        from repro.fuzzer.hints import SchedulingHint

        hint = SchedulingHint("st", 0, 0x1234, 1, (0x1234,), 1)
        result = run_mti(image, MTI(sti, (0, 1), hint))
        with pytest.raises(ValueError):
            Reproducer.from_result(result)

    def test_version_check(self):
        with pytest.raises(ValueError, match="version"):
            Reproducer.from_json('{"version": 99}')


class TestMinimization:
    def test_figure1_minimizes_to_the_ops_store(self, figure1_crash, image):
        """Figure 1's essence: only the buf->ops store must be delayed —
        the minimal evidence for where the smp_wmb belongs."""
        from repro.kir.insn import Store

        result = minimize(image, figure1_crash.mti, figure1_crash.crash.title)
        minimal = result.mti.hint.reorder
        stores = [
            i
            for i in image.program.function("post_one_notification").insns
            if isinstance(i, Store)
        ]
        ops_store = stores[1].addr  # buf->len is stores[0], buf->ops is stores[1]
        assert minimal == (ops_store,)

    def test_minimized_mti_still_crashes(self, figure1_crash, image):
        result = minimize(image, figure1_crash.mti, figure1_crash.crash.title)
        replay = run_mti(image, result.mti)
        assert replay.crashed and replay.crash.title == figure1_crash.crash.title

    def test_input_minimization_keeps_the_pair(self, figure1_crash, image):
        result = minimize(image, figure1_crash.mti, figure1_crash.crash.title)
        i, j = result.mti.pair
        names = {result.mti.sti.calls[i].name, result.mti.sti.calls[j].name}
        assert names == {"watch_queue_post", "pipe_read"}

    def test_non_crashing_input_rejected(self, image):
        sti = STI((Call("null"), Call("getpid")))
        from repro.fuzzer.hints import SchedulingHint

        hint = SchedulingHint("st", 0, 0x1234, 1, (0x1234,), 1)
        with pytest.raises(ValueError):
            minimize(image, MTI(sti, (0, 1), hint), "whatever")

    def test_reorder_minimization_counts_tests(self, figure1_crash, image):
        _, tests, dropped = minimize_reorder_set(
            image, figure1_crash.mti, figure1_crash.crash.title
        )
        assert tests >= 1
        assert dropped >= 0
