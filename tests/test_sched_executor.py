"""Tests for the hypothetical-barrier-test executor (paper Figure 5)."""

import pytest

from repro.errors import ConfigError, KirError
from repro.kir import Builder, Program
from repro.kir.insn import Load, Store
from repro.machine import Machine
from repro.mem.memory import DATA_BASE
from repro.oemu.instrument import instrument_program
from repro.sched import BarrierTestExecutor
from repro.trace import TraceRecorder

A = DATA_BASE + 0x00
B = DATA_BASE + 0x08
C = DATA_BASE + 0x10
D = DATA_BASE + 0x18


def figure5a_machine():
    """CPU1 writes a, b, c then d (hypothetical wmb before d);
    CPU2 reads d then a, b, c and returns the packed observation."""
    w = Builder("cpu1")
    w.store(A, 0, 1)
    w.store(B, 0, 1)
    w.store(C, 0, 1)
    w.store(D, 0, 1)
    w.ret()
    r = Builder("cpu2")
    rd = r.load(D, 0)
    ra = r.load(A, 0)
    rb = r.load(B, 0)
    rc = r.load(C, 0)
    s = r.mul(rd, 1000)
    t = r.mul(ra, 100)
    u = r.mul(rb, 10)
    acc = r.add(s, t)
    acc = r.add(acc, u)
    acc = r.add(acc, rc)
    r.ret(acc)
    prog, _ = instrument_program(Program([w.function(), r.function()]))
    return Machine(prog)


class TestStoreBarrierTest:
    def test_figure5a_observer_sees_reordered_world(self):
        m = figure5a_machine()
        ex = BarrierTestExecutor(m)
        stores = [i for i in m.program.function("cpu1").insns if isinstance(i, Store)]
        victim = m.spawn("cpu1", cpu=0)
        observer = m.spawn("cpu2", cpu=1)
        outcome = ex.run_store_test(
            victim, observer, sched_addr=stores[3].addr,
            reorder_addrs=[s.addr for s in stores[:3]],
        )
        # CPU2 observed W(d) without W(a), W(b), W(c): d=1, a=b=c=0.
        assert not outcome.crashed
        assert outcome.observer_ret == 1000

    def test_final_state_is_consistent_after_flush(self):
        """Step 3 of Figure 5a: the victim resumes and the test ends
        with every store committed (implicit mb at syscall exit)."""
        m = figure5a_machine()
        ex = BarrierTestExecutor(m)
        stores = [i for i in m.program.function("cpu1").insns if isinstance(i, Store)]
        victim = m.spawn("cpu1", cpu=0)
        observer = m.spawn("cpu2", cpu=1)
        ex.run_store_test(victim, observer, stores[3].addr, [s.addr for s in stores[:3]])
        for addr in (A, B, C, D):
            assert m.memory.load(addr, 8) == 1

    def test_without_reorder_set_observer_sees_program_order(self):
        m = figure5a_machine()
        ex = BarrierTestExecutor(m)
        stores = [i for i in m.program.function("cpu1").insns if isinstance(i, Store)]
        victim = m.spawn("cpu1", cpu=0)
        observer = m.spawn("cpu2", cpu=1)
        outcome = ex.run_store_test(victim, observer, stores[3].addr, [])
        assert outcome.observer_ret == 1111

    def test_controls_cleared_after_test(self):
        m = figure5a_machine()
        ex = BarrierTestExecutor(m)
        stores = [i for i in m.program.function("cpu1").insns if isinstance(i, Store)]
        victim = m.spawn("cpu1", cpu=0)
        observer = m.spawn("cpu2", cpu=1)
        ex.run_store_test(victim, observer, stores[3].addr, [stores[0].addr])
        state = m.oemu.thread_state(victim.thread_id)
        assert not state.delay_set and not state.version_set
        assert len(state.buffer) == 0


def figure5b_machine():
    """CPU1 writes x, y, z, w; CPU2 reads w (after its actual rmb) then
    z, y, x.  The hypothetical rmb sits right after R(w)."""
    w = Builder("cpu1")
    w.store(A, 0, 1)  # x
    w.store(B, 0, 1)  # y
    w.store(C, 0, 1)  # z
    w.store(D, 0, 1)  # w
    w.ret()
    r = Builder("cpu2")
    r.rmb()  # the actual barrier of Figure 5b
    rw = r.load(D, 0)
    rz = r.load(C, 0)
    ry = r.load(B, 0)
    rx = r.load(A, 0)
    s = r.mul(rw, 1000)
    t = r.mul(rz, 100)
    u = r.mul(ry, 10)
    acc = r.add(s, t)
    acc = r.add(acc, u)
    acc = r.add(acc, rx)
    r.ret(acc)
    prog, _ = instrument_program(Program([w.function(), r.function()]))
    return Machine(prog)


class TestLoadBarrierTest:
    def test_figure5b_versioned_loads_read_history(self):
        m = figure5b_machine()
        ex = BarrierTestExecutor(m)
        loads = [i for i in m.program.function("cpu2").insns if isinstance(i, Load)]
        victim = m.spawn("cpu2", cpu=0)     # the reader reorders its loads
        observer = m.spawn("cpu1", cpu=1)   # the writer builds the history
        outcome = ex.run_load_test(
            victim, observer, sched_addr=loads[0].addr,
            reorder_addrs=[l.addr for l in loads[1:]],
        )
        # R(w) reads the updated value; R(z), R(y), R(x) read old values.
        assert outcome.victim_ret == 1000

    def test_without_version_set_reader_sees_updates(self):
        m = figure5b_machine()
        ex = BarrierTestExecutor(m)
        loads = [i for i in m.program.function("cpu2").insns if isinstance(i, Load)]
        victim = m.spawn("cpu2", cpu=0)
        observer = m.spawn("cpu1", cpu=1)
        outcome = ex.run_load_test(victim, observer, loads[0].addr, [])
        assert outcome.victim_ret == 1111

    def test_partial_reorder_set(self):
        """Sliding the hypothetical barrier down (Algorithm 1 step 3):
        only the last two loads reordered."""
        m = figure5b_machine()
        ex = BarrierTestExecutor(m)
        loads = [i for i in m.program.function("cpu2").insns if isinstance(i, Load)]
        victim = m.spawn("cpu2", cpu=0)
        observer = m.spawn("cpu1", cpu=1)
        outcome = ex.run_load_test(
            victim, observer, loads[0].addr, [l.addr for l in loads[2:]]
        )
        assert outcome.victim_ret == 1100  # w, z updated; y, x old


class TestCrashCapture:
    def test_crash_in_observer_is_annotated(self):
        w = Builder("pub")
        w.store(A, 0, 0)       # pointer slot, stays NULL when delayed...
        w.store(A, 0, B)       # publish &B
        w.store(C, 0, 1)       # ready flag
        w.ret()
        r = Builder("consume")
        ready = r.load(C, 0)
        skip = r.label()
        r.beq(ready, 0, skip)
        p = r.load(A, 0)
        v = r.load(p, 0)       # NULL deref when the publish store is delayed
        r.ret(v)
        r.bind(skip)
        r.ret(0)
        prog, _ = instrument_program(Program([w.function(), r.function()]))
        m = Machine(prog)
        ex = BarrierTestExecutor(m)
        stores = [i for i in prog.function("pub").insns if isinstance(i, Store)]
        victim = m.spawn("pub", cpu=0)
        observer = m.spawn("consume", cpu=1)
        outcome = ex.run_store_test(
            victim, observer, stores[2].addr, [stores[1].addr]
        )
        assert outcome.crashed and outcome.phase == "observer"
        assert outcome.crash.barrier_test == "store"
        assert outcome.crash.hypothetical_barrier == stores[2].addr
        assert outcome.crash.reordered_insns == (stores[1].addr,)
        assert "consume" in outcome.crash.title

    def test_crash_event_index_recorded_when_traced(self):
        rec = TraceRecorder()
        m = figure5a_machine()
        m.trace = rec  # bare machines accept a sink post-construction too
        ex = BarrierTestExecutor(m)
        stores = [i for i in m.program.function("cpu1").insns if isinstance(i, Store)]
        victim = m.spawn("cpu1", cpu=0)
        observer = m.spawn("cpu2", cpu=1)
        outcome = ex.run_store_test(victim, observer, stores[3].addr, [])
        assert not outcome.crashed
        assert any(e.kind == "phase" for e in rec.events())


class TestInterruptInjection:
    """§3.1: an interrupt flushes the virtual store buffer."""

    def test_interrupt_evaporates_the_reordering(self):
        m = figure5a_machine()
        ex = BarrierTestExecutor(m)
        stores = [i for i in m.program.function("cpu1").insns if isinstance(i, Store)]
        victim = m.spawn("cpu1", cpu=0)
        observer = m.spawn("cpu2", cpu=1)
        outcome = ex.run_store_test(
            victim, observer, stores[3].addr,
            [s.addr for s in stores[:3]], inject_interrupt=True,
        )
        # The delayed stores were committed by the interrupt before the
        # observer ran: it sees plain program order, no reordered world.
        assert not outcome.crashed
        assert outcome.observer_ret == 1111

    def test_without_interrupt_same_controls_reorder(self):
        m = figure5a_machine()
        ex = BarrierTestExecutor(m)
        stores = [i for i in m.program.function("cpu1").insns if isinstance(i, Store)]
        victim = m.spawn("cpu1", cpu=0)
        observer = m.spawn("cpu2", cpu=1)
        outcome = ex.run_store_test(
            victim, observer, stores[3].addr,
            [s.addr for s in stores[:3]], inject_interrupt=False,
        )
        assert outcome.observer_ret == 1000

    def test_interrupt_on_uninstrumented_machine_is_a_noop(self):
        m = uninstrumented_machine()
        ex = BarrierTestExecutor(m)
        stores = [i for i in m.program.function("cpu1").insns if isinstance(i, Store)]
        victim = m.spawn("cpu1", cpu=0)
        observer = m.spawn("cpu2", cpu=1)
        outcome = ex.run_store_test(
            victim, observer, stores[3].addr, [], inject_interrupt=True
        )
        assert not outcome.crashed
        assert outcome.observer_ret == 1111


def uninstrumented_machine():
    """The figure 5a program on a plain machine: no OEMU at all."""
    w = Builder("cpu1")
    w.store(A, 0, 1)
    w.store(B, 0, 1)
    w.store(C, 0, 1)
    w.store(D, 0, 1)
    w.ret()
    r = Builder("cpu2")
    rd = r.load(D, 0)
    ra = r.load(A, 0)
    rb = r.load(B, 0)
    rc = r.load(C, 0)
    s = r.mul(rd, 1000)
    t = r.mul(ra, 100)
    u = r.mul(rb, 10)
    acc = r.add(s, t)
    acc = r.add(acc, u)
    acc = r.add(acc, rc)
    r.ret(acc)
    return Machine(Program([w.function(), r.function()]), with_oemu=False)


class TestUninstrumentedMachine:
    """Regression: _finish used to call oemu.clear_controls/oemu.flush
    unconditionally and crash with AttributeError when oemu is None."""

    def test_interleaving_only_store_test_completes(self):
        m = uninstrumented_machine()
        assert m.oemu is None
        ex = BarrierTestExecutor(m)
        stores = [i for i in m.program.function("cpu1").insns if isinstance(i, Store)]
        victim = m.spawn("cpu1", cpu=0)
        observer = m.spawn("cpu2", cpu=1)
        outcome = ex.run_store_test(victim, observer, stores[3].addr, [])
        assert not outcome.crashed
        assert outcome.observer_ret == 1111  # no OEMU, so program order
        assert outcome.victim_ret == 0

    def test_interleaving_only_load_test_completes(self):
        m = uninstrumented_machine()
        ex = BarrierTestExecutor(m)
        loads = [i for i in m.program.function("cpu2").insns if isinstance(i, Load)]
        victim = m.spawn("cpu2", cpu=0)
        observer = m.spawn("cpu1", cpu=1)
        outcome = ex.run_load_test(victim, observer, loads[0].addr, [])
        assert not outcome.crashed
        assert outcome.victim_ret == 1111

    def test_reordering_controls_require_oemu(self):
        m = uninstrumented_machine()
        ex = BarrierTestExecutor(m)
        stores = [i for i in m.program.function("cpu1").insns if isinstance(i, Store)]
        victim = m.spawn("cpu1", cpu=0)
        observer = m.spawn("cpu2", cpu=1)
        with pytest.raises(ConfigError, match="OEMU-instrumented"):
            ex.run_store_test(
                victim, observer, stores[3].addr, [stores[0].addr]
            )
        victim2 = m.spawn("cpu1", cpu=0)
        observer2 = m.spawn("cpu2", cpu=1)
        with pytest.raises(ConfigError, match="OEMU-instrumented"):
            ex.run_load_test(victim2, observer2, stores[3].addr, [stores[0].addr])


class TestSourceContextNarrowing:
    """_finish's source-context lookup: narrowed exceptions + trace note."""

    def test_out_of_range_address_raises_kir_error(self):
        from repro.kir.disasm import source_context

        m = figure5a_machine()
        with pytest.raises(KirError):
            source_context(m.program, 0xDEAD_BEEF)

    def test_crash_with_unresolvable_addr_is_not_swallowed_silently(self):
        """A crash whose inst_addr has no listing still finishes cleanly,
        and the miss lands on the bus as a note instead of vanishing."""
        w = Builder("boom")
        w.helper("oops")
        w.ret()
        r = Builder("idle")
        r.ret(0)
        prog, _ = instrument_program(Program([w.function(), r.function()]))
        m = Machine(prog)

        def oops(machine, thread, *args):
            from repro.errors import KernelCrash
            from repro.oracles.report import CrashReport

            raise KernelCrash(
                CrashReport(
                    title="kernel BUG at boom",
                    oracle="assert",
                    function="boom",
                    inst_addr=0xDEAD_BEEF,  # outside the text segment
                )
            )

        m.register_helper("oops", oops)
        rec = TraceRecorder()
        m.trace = rec
        ex = BarrierTestExecutor(m)
        victim = m.spawn("boom", cpu=0)
        observer = m.spawn("idle", cpu=1)
        first = m.program.function("boom").insns[0]
        outcome = ex.run_store_test(victim, observer, first.addr, [])
        assert outcome.crashed
        assert outcome.crash.source_context == ""
        notes = [e for e in rec.events() if e.kind == "note"]
        assert len(notes) == 1
        assert "source-context unavailable" in notes[0].message
        assert "0xdeadbeef" in notes[0].message
