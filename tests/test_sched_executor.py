"""Tests for the hypothetical-barrier-test executor (paper Figure 5)."""

import pytest

from repro.kir import Builder, Program
from repro.kir.insn import Load, Store
from repro.machine import Machine
from repro.mem.memory import DATA_BASE
from repro.oemu.instrument import instrument_program
from repro.sched import BarrierTestExecutor

A = DATA_BASE + 0x00
B = DATA_BASE + 0x08
C = DATA_BASE + 0x10
D = DATA_BASE + 0x18


def figure5a_machine():
    """CPU1 writes a, b, c then d (hypothetical wmb before d);
    CPU2 reads d then a, b, c and returns the packed observation."""
    w = Builder("cpu1")
    w.store(A, 0, 1)
    w.store(B, 0, 1)
    w.store(C, 0, 1)
    w.store(D, 0, 1)
    w.ret()
    r = Builder("cpu2")
    rd = r.load(D, 0)
    ra = r.load(A, 0)
    rb = r.load(B, 0)
    rc = r.load(C, 0)
    s = r.mul(rd, 1000)
    t = r.mul(ra, 100)
    u = r.mul(rb, 10)
    acc = r.add(s, t)
    acc = r.add(acc, u)
    acc = r.add(acc, rc)
    r.ret(acc)
    prog, _ = instrument_program(Program([w.function(), r.function()]))
    return Machine(prog)


class TestStoreBarrierTest:
    def test_figure5a_observer_sees_reordered_world(self):
        m = figure5a_machine()
        ex = BarrierTestExecutor(m)
        stores = [i for i in m.program.function("cpu1").insns if isinstance(i, Store)]
        victim = m.spawn("cpu1", cpu=0)
        observer = m.spawn("cpu2", cpu=1)
        outcome = ex.run_store_test(
            victim, observer, sched_addr=stores[3].addr,
            reorder_addrs=[s.addr for s in stores[:3]],
        )
        # CPU2 observed W(d) without W(a), W(b), W(c): d=1, a=b=c=0.
        assert not outcome.crashed
        assert outcome.observer_ret == 1000

    def test_final_state_is_consistent_after_flush(self):
        """Step 3 of Figure 5a: the victim resumes and the test ends
        with every store committed (implicit mb at syscall exit)."""
        m = figure5a_machine()
        ex = BarrierTestExecutor(m)
        stores = [i for i in m.program.function("cpu1").insns if isinstance(i, Store)]
        victim = m.spawn("cpu1", cpu=0)
        observer = m.spawn("cpu2", cpu=1)
        ex.run_store_test(victim, observer, stores[3].addr, [s.addr for s in stores[:3]])
        for addr in (A, B, C, D):
            assert m.memory.load(addr, 8) == 1

    def test_without_reorder_set_observer_sees_program_order(self):
        m = figure5a_machine()
        ex = BarrierTestExecutor(m)
        stores = [i for i in m.program.function("cpu1").insns if isinstance(i, Store)]
        victim = m.spawn("cpu1", cpu=0)
        observer = m.spawn("cpu2", cpu=1)
        outcome = ex.run_store_test(victim, observer, stores[3].addr, [])
        assert outcome.observer_ret == 1111

    def test_controls_cleared_after_test(self):
        m = figure5a_machine()
        ex = BarrierTestExecutor(m)
        stores = [i for i in m.program.function("cpu1").insns if isinstance(i, Store)]
        victim = m.spawn("cpu1", cpu=0)
        observer = m.spawn("cpu2", cpu=1)
        ex.run_store_test(victim, observer, stores[3].addr, [stores[0].addr])
        state = m.oemu.thread_state(victim.thread_id)
        assert not state.delay_set and not state.version_set
        assert len(state.buffer) == 0


def figure5b_machine():
    """CPU1 writes x, y, z, w; CPU2 reads w (after its actual rmb) then
    z, y, x.  The hypothetical rmb sits right after R(w)."""
    w = Builder("cpu1")
    w.store(A, 0, 1)  # x
    w.store(B, 0, 1)  # y
    w.store(C, 0, 1)  # z
    w.store(D, 0, 1)  # w
    w.ret()
    r = Builder("cpu2")
    r.rmb()  # the actual barrier of Figure 5b
    rw = r.load(D, 0)
    rz = r.load(C, 0)
    ry = r.load(B, 0)
    rx = r.load(A, 0)
    s = r.mul(rw, 1000)
    t = r.mul(rz, 100)
    u = r.mul(ry, 10)
    acc = r.add(s, t)
    acc = r.add(acc, u)
    acc = r.add(acc, rx)
    r.ret(acc)
    prog, _ = instrument_program(Program([w.function(), r.function()]))
    return Machine(prog)


class TestLoadBarrierTest:
    def test_figure5b_versioned_loads_read_history(self):
        m = figure5b_machine()
        ex = BarrierTestExecutor(m)
        loads = [i for i in m.program.function("cpu2").insns if isinstance(i, Load)]
        victim = m.spawn("cpu2", cpu=0)     # the reader reorders its loads
        observer = m.spawn("cpu1", cpu=1)   # the writer builds the history
        outcome = ex.run_load_test(
            victim, observer, sched_addr=loads[0].addr,
            reorder_addrs=[l.addr for l in loads[1:]],
        )
        # R(w) reads the updated value; R(z), R(y), R(x) read old values.
        assert outcome.victim_ret == 1000

    def test_without_version_set_reader_sees_updates(self):
        m = figure5b_machine()
        ex = BarrierTestExecutor(m)
        loads = [i for i in m.program.function("cpu2").insns if isinstance(i, Load)]
        victim = m.spawn("cpu2", cpu=0)
        observer = m.spawn("cpu1", cpu=1)
        outcome = ex.run_load_test(victim, observer, loads[0].addr, [])
        assert outcome.victim_ret == 1111

    def test_partial_reorder_set(self):
        """Sliding the hypothetical barrier down (Algorithm 1 step 3):
        only the last two loads reordered."""
        m = figure5b_machine()
        ex = BarrierTestExecutor(m)
        loads = [i for i in m.program.function("cpu2").insns if isinstance(i, Load)]
        victim = m.spawn("cpu2", cpu=0)
        observer = m.spawn("cpu1", cpu=1)
        outcome = ex.run_load_test(
            victim, observer, loads[0].addr, [l.addr for l in loads[2:]]
        )
        assert outcome.victim_ret == 1100  # w, z updated; y, x old


class TestCrashCapture:
    def test_crash_in_observer_is_annotated(self):
        w = Builder("pub")
        w.store(A, 0, 0)       # pointer slot, stays NULL when delayed...
        w.store(A, 0, B)       # publish &B
        w.store(C, 0, 1)       # ready flag
        w.ret()
        r = Builder("consume")
        ready = r.load(C, 0)
        skip = r.label()
        r.beq(ready, 0, skip)
        p = r.load(A, 0)
        v = r.load(p, 0)       # NULL deref when the publish store is delayed
        r.ret(v)
        r.bind(skip)
        r.ret(0)
        prog, _ = instrument_program(Program([w.function(), r.function()]))
        m = Machine(prog)
        ex = BarrierTestExecutor(m)
        stores = [i for i in prog.function("pub").insns if isinstance(i, Store)]
        victim = m.spawn("pub", cpu=0)
        observer = m.spawn("consume", cpu=1)
        outcome = ex.run_store_test(
            victim, observer, stores[2].addr, [stores[1].addr]
        )
        assert outcome.crashed and outcome.phase == "observer"
        assert outcome.crash.barrier_test == "store"
        assert outcome.crash.hypothetical_barrier == stores[2].addr
        assert outcome.crash.reordered_insns == (stores[1].addr,)
        assert "consume" in outcome.crash.title
