"""Tests for the ExecTrace event bus (events, sinks, recorder, metrics)."""

import pytest

from repro.kir import Builder, Program
from repro.kir.insn import Load, Store
from repro.machine import ExecutionMachine, Machine
from repro.mem.memory import DATA_BASE
from repro.oemu.instrument import instrument_program
from repro.sched import BarrierTestExecutor
from repro.trace import (
    NULL_SINK,
    BatchClaimed,
    BatchStolen,
    BreakpointHit,
    BufferFlush,
    CheckpointWritten,
    InputQuarantined,
    InterruptInjected,
    NullSink,
    OracleFired,
    PhaseBegin,
    ShardHeartbeat,
    ShardRetried,
    ShardStarted,
    Step,
    StoreDelayed,
    SyscallEnter,
    SyscallExit,
    TeeSink,
    TraceMetrics,
    TraceNote,
    TraceRecorder,
    TraceSink,
    VersionedLoad,
    WindowReset,
    event_from_dict,
    event_kinds,
)

A = DATA_BASE + 0x00
B = DATA_BASE + 0x08
C = DATA_BASE + 0x10
D = DATA_BASE + 0x18

#: One concrete instance per registered kind, used for round-trip tests.
SAMPLE_EVENTS = {
    "step": Step(1, 64),
    "store-delayed": StoreDelayed(1, 64, DATA_BASE, 8),
    "buffer-flush": BufferFlush(1, 3, "barrier"),
    "versioned-load": VersionedLoad(2, 68, DATA_BASE, 8, True),
    "window-reset": WindowReset(1, 7),
    "interrupt": InterruptInjected(1),
    "breakpoint-hit": BreakpointHit(1, 64, "after", 1),
    "phase": PhaseBegin("observer", "store"),
    "syscall-enter": SyscallEnter(1, "pipe_read"),
    "syscall-exit": SyscallExit(1, "pipe_read"),
    "oracle-report": OracleFired("KASAN: slab-out-of-bounds Read in f", "kasan", 96),
    "note": TraceNote("source-context unavailable"),
    "shard-start": ShardStarted(1, 10001, 0),
    "shard-heartbeat": ShardHeartbeat(1, 4),
    "shard-retry": ShardRetried(1, 0, "hung"),
    "batch-claim": BatchClaimed(0, 1, 0),
    "batch-steal": BatchStolen(1, 2, 0, 1),
    "shard-quarantine": InputQuarantined(1, 4, 2),
    "checkpoint": CheckpointWritten(1, 1),
}


def figure5a_machine(trace=NULL_SINK):
    w = Builder("cpu1")
    w.store(A, 0, 1)
    w.store(B, 0, 1)
    w.store(C, 0, 1)
    w.store(D, 0, 1)
    w.ret()
    r = Builder("cpu2")
    rd = r.load(D, 0)
    ra = r.load(A, 0)
    rb = r.load(B, 0)
    rc = r.load(C, 0)
    s = r.mul(rd, 1000)
    t = r.mul(ra, 100)
    u = r.mul(rb, 10)
    acc = r.add(s, t)
    acc = r.add(acc, u)
    acc = r.add(acc, rc)
    r.ret(acc)
    prog, _ = instrument_program(Program([w.function(), r.function()]))
    return Machine(prog, trace=trace)


def run_store_test(m, inject_interrupt=False):
    ex = BarrierTestExecutor(m)
    stores = [i for i in m.program.function("cpu1").insns if isinstance(i, Store)]
    victim = m.spawn("cpu1", cpu=0)
    observer = m.spawn("cpu2", cpu=1)
    outcome = ex.run_store_test(
        victim, observer, sched_addr=stores[3].addr,
        reorder_addrs=[s.addr for s in stores[:3]],
        inject_interrupt=inject_interrupt,
    )
    return outcome


class TestEvents:
    @pytest.mark.parametrize("kind", sorted(SAMPLE_EVENTS))
    def test_round_trip_is_exact(self, kind):
        event = SAMPLE_EVENTS[kind]
        payload = event.to_dict()
        assert payload["kind"] == kind
        assert event_from_dict(payload) == event

    def test_every_registered_kind_has_a_sample(self):
        assert set(event_kinds()) == set(SAMPLE_EVENTS)

    def test_unknown_keys_are_ignored(self):
        payload = Step(1, 64).to_dict()
        payload["i"] = 17  # the recorder's index annotation
        assert event_from_dict(payload) == Step(1, 64)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            event_from_dict({"kind": "bogus"})

    def test_events_are_immutable(self):
        with pytest.raises(Exception):
            SAMPLE_EVENTS["step"].addr = 1


class TestSinks:
    def test_null_sink_is_inactive(self):
        assert NULL_SINK.active is False
        NULL_SINK.emit(Step(1, 64))  # harmless even unguarded
        assert NULL_SINK.index == 0

    def test_machine_defaults_to_null_sink(self):
        m = figure5a_machine()
        assert isinstance(m.trace, NullSink)
        run_store_test(m)  # no recording, still works

    def test_sinks_satisfy_protocol(self):
        for sink in (NULL_SINK, TraceRecorder(), TraceMetrics(), TeeSink([])):
            assert isinstance(sink, TraceSink)

    def test_machine_satisfies_execution_protocol(self):
        assert isinstance(figure5a_machine(), ExecutionMachine)

    def test_tee_fans_out_and_skips_inactive(self):
        a, b = TraceRecorder(), TraceMetrics()
        tee = TeeSink([a, NULL_SINK, b])
        assert len(tee.sinks) == 2
        tee.emit(Step(1, 64))
        assert tee.index == 1 and a.index == 1 and b.index == 1


class TestRecorder:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceRecorder(0)

    def test_ring_is_bounded_and_counts_drops(self):
        rec = TraceRecorder(4)
        for n in range(10):
            rec.emit(Step(1, n))
        assert rec.index == 10 and len(rec) == 4
        assert rec.dropped == 6
        assert [e.addr for e in rec.events()] == [6, 7, 8, 9]
        assert [i for i, _ in rec.indexed_events()] == [6, 7, 8, 9]

    def test_schedule_dict_shape(self):
        rec = TraceRecorder(8)
        rec.emit(Step(1, 64))
        rec.emit(BufferFlush(1, 2, "barrier"))
        sched = rec.schedule_dict()
        assert sched["version"] == 1
        assert sched["capacity"] == 8
        assert sched["dropped"] == 0
        assert sched["n_events"] == 2
        assert sched["events"][0] == dict(Step(1, 64).to_dict(), i=0)
        assert sched["events"][1]["kind"] == "buffer-flush"


class TestBusIntegration:
    """The stack emits the right events during a Figure 5a run."""

    def test_store_test_event_stream(self):
        rec = TraceRecorder()
        m = figure5a_machine(trace=rec)
        outcome = run_store_test(m)
        assert outcome.observer_ret == 1000
        kinds = [e.kind for e in rec.events()]
        # All three delayed stores parked, then drained by the implicit
        # full barrier when the victim returns to userspace.
        assert kinds.count("store-delayed") == 3
        assert any(
            e.kind == "buffer-flush" and e.count == 3 and e.reason == "syscall-exit"
            for e in rec.events()
        )
        # The scheduler suspended the victim at its scheduling point.
        hits = [e for e in rec.events() if e.kind == "breakpoint-hit"]
        assert len(hits) == 1 and hits[0].policy == "after"
        # Executor phases, in order.
        phases = [e.name for e in rec.events() if e.kind == "phase"]
        assert phases == ["victim-to-sched", "observer", "victim-resume", "finish"]
        # Every retired instruction produced a step event.
        threads = {e.thread for e in rec.events() if e.kind == "step"}
        assert threads == {1, 2}

    def test_load_test_emits_versioned_loads(self):
        rec = TraceRecorder()
        m = figure5a_machine(trace=rec)
        ex = BarrierTestExecutor(m)
        loads = [i for i in m.program.function("cpu2").insns if isinstance(i, Load)]
        victim = m.spawn("cpu2", cpu=0)
        observer = m.spawn("cpu1", cpu=1)
        outcome = ex.run_load_test(
            victim, observer, loads[0].addr, [l.addr for l in loads[1:]]
        )
        assert outcome.victim_ret == 1000
        versioned = [e for e in rec.events() if e.kind == "versioned-load"]
        assert len(versioned) == 3 and all(e.stale for e in versioned)

    def test_interrupt_injection_emits_and_flushes(self):
        rec = TraceRecorder()
        m = figure5a_machine(trace=rec)
        outcome = run_store_test(m, inject_interrupt=True)
        # §3.1: the interrupt flushed the buffer, so the reordering
        # evaporated and the observer saw program order.
        assert outcome.observer_ret == 1111
        events = rec.events()
        irq = next(i for i, e in enumerate(events) if e.kind == "interrupt")
        assert events[irq].thread == 1
        flush = events[irq + 1]
        assert flush.kind == "buffer-flush" and flush.reason == "interrupt"
        assert flush.count == 3


class TestMetrics:
    def test_aggregates_from_store_test(self):
        metrics = TraceMetrics()
        m = figure5a_machine(trace=metrics)
        run_store_test(m)
        assert metrics.breakpoint_hits == 1
        # Steps attributed to each executor phase.
        assert set(metrics.steps_by_phase) >= {"victim-to-sched", "observer"}
        assert all(v > 0 for v in metrics.steps_by_phase.values())
        # Occupancy climbed to 3 pending stores, then flushed to 0.
        assert set(metrics.occupancy_histogram) >= {0, 1, 2, 3}
        split = metrics.overhead_split()
        assert split["interp"] == metrics.events_by_kind["step"]
        assert split["oemu"] >= 4  # 3 delays + >= 1 flush
        js = metrics.to_json_dict()
        assert js["events"] == metrics.index
        assert js["breakpoint_hits"] == 1
        assert js["occupancy_histogram"]["3"] >= 1

    def test_tee_records_and_measures_in_one_run(self):
        rec, metrics = TraceRecorder(), TraceMetrics()
        m = figure5a_machine(trace=TeeSink([rec, metrics]))
        run_store_test(m)
        assert rec.index == metrics.index > 0


class TestKernelBoundary:
    def test_syscall_enter_exit_events(self):
        from repro.config import KernelConfig
        from repro.kernel.kernel import Kernel, KernelImage

        rec = TraceRecorder()
        kernel = Kernel(KernelImage(KernelConfig()), trace=rec)
        kernel.run_syscall("getpid")
        enters = [e for e in rec.events() if e.kind == "syscall-enter"]
        exits = [e for e in rec.events() if e.kind == "syscall-exit"]
        assert [e.name for e in enters] == ["getpid"]
        assert [e.name for e in exits] == ["getpid"]
        assert enters[0].thread == exits[0].thread
